// Adversarial-corpus battery: every generated messy file must be internally
// consistent (parsing the bytes under the ground-truth dialect reproduces the
// ground-truth grid, and the annotations index that grid), the corpus must be
// deterministic, and the consistency sniffer must strictly beat the retained
// reference sniffer on the aggregate robustness score — the differential the
// BENCH_robustness.json CI gate tracks over time.
#include <map>

#include "csv/parser.h"
#include "csv/sniffer.h"
#include "datagen/messy_generator.h"
#include "eval/robustness.h"
#include "gtest/gtest.h"

namespace aggrecol {
namespace {

using datagen::MessyCategory;
using datagen::MessyCorpusSpec;
using datagen::MessyFile;

const std::vector<MessyFile>& Corpus() {
  static const auto* const kCorpus = new std::vector<MessyFile>(
      datagen::GenerateMessyCorpus(MessyCorpusSpec{}));
  return *kCorpus;
}

TEST(MessyCorpus, CoversEveryCategoryWithRequestedFileCount) {
  const MessyCorpusSpec spec;
  std::map<std::string, int> per_category;
  for (const auto& file : Corpus()) ++per_category[ToString(file.category)];
  ASSERT_EQ(per_category.size(), datagen::kAllMessyCategories.size());
  for (const auto& [category, count] : per_category) {
    EXPECT_EQ(count, spec.files_per_category) << category;
  }
}

TEST(MessyCorpus, IsDeterministic) {
  const auto again = datagen::GenerateMessyCorpus(MessyCorpusSpec{});
  ASSERT_EQ(again.size(), Corpus().size());
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].text, Corpus()[i].text) << i;
    EXPECT_TRUE(again[i].dialect == Corpus()[i].dialect) << i;
    EXPECT_TRUE(again[i].annotated.grid == Corpus()[i].annotated.grid) << i;
  }
}

// The ground-truth contract: parsing the raw bytes under the ground-truth
// dialect must reproduce the ground-truth grid exactly. This is what makes
// the corpus usable as a scoring oracle at all.
TEST(MessyCorpus, GroundTruthDialectReproducesGroundTruthGrid) {
  for (const auto& file : Corpus()) {
    const csv::Grid parsed = csv::ParseGrid(file.text, file.dialect);
    EXPECT_TRUE(parsed == file.annotated.grid) << file.annotated.name;
  }
}

TEST(MessyCorpus, AnnotationsIndexTheGroundTruthGrid) {
  for (const auto& file : Corpus()) {
    const csv::Grid& grid = file.annotated.grid;
    for (const auto& aggregation : file.annotated.annotations) {
      const int line_count = aggregation.axis == core::Axis::kRow
                                 ? grid.rows()
                                 : grid.columns();
      const int line_length = aggregation.axis == core::Axis::kRow
                                  ? grid.columns()
                                  : grid.rows();
      ASSERT_GE(aggregation.line, 0) << file.annotated.name;
      ASSERT_LT(aggregation.line, line_count) << file.annotated.name;
      ASSERT_GE(aggregation.aggregate, 0) << file.annotated.name;
      ASSERT_LT(aggregation.aggregate, line_length) << file.annotated.name;
      for (int index : aggregation.range) {
        ASSERT_GE(index, 0) << file.annotated.name;
        ASSERT_LT(index, line_length) << file.annotated.name;
        ASSERT_NE(index, aggregation.aggregate) << file.annotated.name;
      }
    }
  }
}

TEST(MessyCorpus, EveryFileCarriesAggregations) {
  for (const auto& file : Corpus()) {
    EXPECT_FALSE(file.annotated.annotations.empty()) << file.annotated.name;
  }
}

TEST(MessyCorpus, EncodingQuirkFilesActuallyCarryQuirks) {
  for (const auto& file : Corpus()) {
    if (file.category != MessyCategory::kEncodingQuirks) continue;
    const bool has_bom = file.text.rfind("\xEF\xBB\xBF", 0) == 0;
    const bool has_cr = file.text.find('\r') != std::string::npos;
    EXPECT_TRUE(has_bom || has_cr) << file.annotated.name;
  }
}

TEST(MessyCorpus, AmbiguousFilesAreWidthConsistentUnderComma) {
  // The trap construction: splitting an ambiguous file on ',' must yield the
  // same row width as the true dialect, for every row — otherwise row-width
  // statistics alone could break the tie and the category would not isolate
  // the type model.
  for (const auto& file : Corpus()) {
    if (file.category != MessyCategory::kAmbiguousDialect) continue;
    const auto comma_rows = csv::ParseRows(file.text, csv::Dialect{',', '"'});
    ASSERT_FALSE(comma_rows.empty());
    const size_t width = static_cast<size_t>(file.annotated.grid.columns());
    for (const auto& row : comma_rows) {
      EXPECT_EQ(row.size(), width) << file.annotated.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Robustness scoring
// ---------------------------------------------------------------------------

eval::RobustnessReport Score(eval::SnifferKind sniffer) {
  eval::RobustnessOptions options;
  options.sniffer = sniffer;
  return eval::ScoreRobustness(datagen::ToRobustnessCases(Corpus()), options);
}

TEST(Robustness, ConsistencySnifferElectsTruthOnEveryCorpusFile) {
  for (const auto& file : Corpus()) {
    const auto sniffed = csv::SniffDialect(file.text);
    EXPECT_TRUE(sniffed.dialect == file.dialect)
        << file.annotated.name << ": got " << ToString(sniffed.dialect)
        << " want " << ToString(file.dialect);
  }
}

TEST(Robustness, ConsistencyStrictlyBeatsReferenceOnAggregate) {
  const auto consistency = Score(eval::SnifferKind::kConsistency);
  const auto reference = Score(eval::SnifferKind::kReference);
  EXPECT_GT(consistency.AggregateScore(), reference.AggregateScore());
  // And never loses a category: the consistency sniffer must dominate, not
  // trade one failure mode for another.
  ASSERT_EQ(consistency.categories.size(), reference.categories.size());
  for (size_t i = 0; i < consistency.categories.size(); ++i) {
    EXPECT_GE(consistency.categories[i].Score() + 1e-12,
              reference.categories[i].Score())
        << consistency.categories[i].category;
  }
}

TEST(Robustness, ReferenceSnifferFallsForTheAmbiguousDialectTrap) {
  const auto reference = Score(eval::SnifferKind::kReference);
  const auto consistency = Score(eval::SnifferKind::kConsistency);
  for (size_t i = 0; i < reference.categories.size(); ++i) {
    if (reference.categories[i].category != "ambiguous-dialect") continue;
    EXPECT_LT(reference.categories[i].DialectAccuracy(), 0.5);
    EXPECT_EQ(consistency.categories[i].DialectAccuracy(), 1.0);
    return;
  }
  FAIL() << "ambiguous-dialect category missing from report";
}

TEST(Robustness, ReportPoolsPerCategoryInFirstAppearanceOrder) {
  const auto report = Score(eval::SnifferKind::kConsistency);
  ASSERT_EQ(report.categories.size(), datagen::kAllMessyCategories.size());
  const MessyCorpusSpec spec;
  for (size_t i = 0; i < report.categories.size(); ++i) {
    EXPECT_EQ(report.categories[i].category,
              ToString(datagen::kAllMessyCategories[i]));
    EXPECT_EQ(report.categories[i].files, spec.files_per_category);
  }
  EXPECT_GT(report.AggregateScore(), 0.9);
}

TEST(Robustness, EmptyReportScoresZero) {
  const eval::RobustnessReport empty;
  EXPECT_EQ(empty.AggregateScore(), 0.0);
  const eval::CategoryRobustness none;
  EXPECT_EQ(none.DialectAccuracy(), 0.0);
  EXPECT_EQ(none.ParseFidelity(), 0.0);
}

}  // namespace
}  // namespace aggrecol
