#include "structure/table_splitter.h"

#include "core/aggrecol.h"
#include "datagen/file_generator.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::structure {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::ContainsCanonical;
using aggrecol::testing::MakeGrid;

TEST(TableSplitter, SplitsOnBlankRows) {
  const auto grid = MakeGrid({
      {"Title", ""},
      {"", ""},
      {"a", "1"},
      {"b", "2"},
      {"", ""},
      {"", ""},
      {"c", "3"},
  });
  const auto regions = SplitTables(grid);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0], (TableRegion{0, 1}));
  EXPECT_EQ(regions[1], (TableRegion{2, 2}));
  EXPECT_EQ(regions[2], (TableRegion{6, 1}));
}

TEST(TableSplitter, NoBlanksSingleRegion) {
  const auto grid = MakeGrid({{"a", "1"}, {"b", "2"}});
  const auto regions = SplitTables(grid);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], (TableRegion{0, 2}));
}

TEST(TableSplitter, AllBlankNoRegions) {
  const auto grid = MakeGrid({{"", ""}, {" ", ""}});
  EXPECT_TRUE(SplitTables(grid).empty());
}

TEST(TableSplitter, WhitespaceOnlyRowsAreBlank) {
  const auto grid = MakeGrid({{"a", "1"}, {"  ", "\t"}, {"b", "2"}});
  EXPECT_EQ(SplitTables(grid).size(), 2u);
}

TEST(SplitDetection, RecoversStackedTablesWithDifferentLayouts) {
  // Two stacked tables whose sum columns sit at different positions: whole-
  // file coverage for each pattern is ~0.5 < 0.7 and both sums are lost;
  // per-region detection recovers them.
  const auto grid = MakeGrid({
      {"Item", "A", "B", "Sum", ""},
      {"x", "1", "4", "5", ""},
      {"y", "2", "5", "7", ""},
      {"z", "3", "6", "9", ""},
      {"w", "4", "7", "11", ""},
      {"", "", "", "", ""},
      {"Item", "Total", "C", "D", "E"},
      {"p", "6", "1", "2", "3"},
      {"q", "9", "2", "3", "4"},
      {"r", "12", "3", "4", "5"},
      {"s", "15", "4", "5", "6"},
  });
  core::AggreColConfig whole;
  whole.error_levels.fill(0.0);
  whole.detect_columns = false;
  core::AggreColConfig split = whole;
  split.split_tables = true;

  const auto without = core::AggreCol(whole).Detect(grid);
  const auto with = core::AggreCol(split).Detect(grid);

  // Per-region: both tables' sums found, in file coordinates.
  EXPECT_TRUE(ContainsCanonical(with.aggregations,
                                Agg(1, 3, {1, 2}, core::AggregationFunction::kSum)));
  EXPECT_TRUE(ContainsCanonical(
      with.aggregations, Agg(7, 1, {2, 3, 4}, core::AggregationFunction::kSum)));
  // Whole-file coverage dilution loses at least one of them.
  const bool first_found = ContainsCanonical(
      without.aggregations, Agg(1, 3, {1, 2}, core::AggregationFunction::kSum));
  const bool second_found = ContainsCanonical(
      without.aggregations, Agg(7, 1, {2, 3, 4}, core::AggregationFunction::kSum));
  EXPECT_FALSE(first_found && second_found);
}

TEST(SplitDetection, ColumnWiseIndicesMapBack) {
  const auto grid = MakeGrid({
      {"Title", "", ""},
      {"", "", ""},
      {"Item", "A", "B"},
      {"x", "1", "4"},
      {"y", "2", "5"},
      {"z", "3", "6"},
      {"Total", "6", "15"},
  });
  core::AggreColConfig config;
  config.error_levels.fill(0.0);
  config.split_tables = true;
  const auto result = core::AggreCol(config).Detect(grid);
  EXPECT_TRUE(ContainsCanonical(
      result.aggregations,
      Agg(1, 6, {3, 4, 5}, core::AggregationFunction::kSum, core::Axis::kColumn)));
}

TEST(SplitDetection, SingleRegionMatchesWholeFile) {
  const auto file = datagen::GenerateFile(datagen::GeneratorProfile{}, 12, "s.csv");
  core::AggreColConfig whole;
  core::AggreColConfig split = whole;
  split.split_tables = true;
  const auto a = core::AggreCol(whole).Detect(file.grid);
  const auto b = core::AggreCol(split).Detect(file.grid);
  // Regions exist (title/footnote blocks), so results may differ slightly in
  // pathological cases; for a typical single-table file they agree.
  const auto scores = eval::Score(b.aggregations, a.aggregations);
  EXPECT_GT(scores.F1(), 0.95);
}

TEST(SplitDetection, CorpusRecallImprovesOnMultiTableFiles) {
  datagen::GeneratorProfile profile;
  profile.p_no_aggregation = 0.0;
  profile.p_second_table = 1.0;
  profile.second_table_new_plan = true;
  profile.p_big_file = 0.0;

  core::AggreColConfig whole;
  core::AggreColConfig split = whole;
  split.split_tables = true;

  std::vector<eval::Scores> whole_scores;
  std::vector<eval::Scores> split_scores;
  for (uint64_t seed = 400; seed < 412; ++seed) {
    const auto file = datagen::GenerateFile(profile, seed, "m.csv");
    whole_scores.push_back(eval::Score(
        core::AggreCol(whole).Detect(file.grid).aggregations, file.annotations));
    split_scores.push_back(eval::Score(
        core::AggreCol(split).Detect(file.grid).aggregations, file.annotations));
  }
  const auto whole_total = eval::Accumulate(whole_scores);
  const auto split_total = eval::Accumulate(split_scores);
  EXPECT_GT(split_total.recall, whole_total.recall);
  EXPECT_GT(split_total.recall, 0.85);
}

TEST(SplitDetection, SecondTableAggregationsCreditedInWholeFileCoordinates) {
  // Whole-file ground truth for a stacked pair of tables: the second table's
  // aggregations live at row offset 4 (3 table-1 rows + the blank separator).
  // Split-tables detection must report them in whole-file coordinates so
  // eval::Score credits them against this truth directly.
  const auto grid = MakeGrid({
      {"Item", "A", "B", "Sum"},
      {"x", "1", "4", "5"},
      {"y", "2", "5", "7"},
      {"", "", "", ""},
      {"Item", "C", "D", "Sum"},
      {"u", "10", "1", "11"},
      {"v", "20", "2", "22"},
      {"Total", "30", "3", "33"},
  });
  const std::vector<core::Aggregation> truth = {
      Agg(1, 3, {1, 2}, core::AggregationFunction::kSum),
      Agg(2, 3, {1, 2}, core::AggregationFunction::kSum),
      Agg(5, 3, {1, 2}, core::AggregationFunction::kSum),
      Agg(6, 3, {1, 2}, core::AggregationFunction::kSum),
      Agg(1, 7, {5, 6}, core::AggregationFunction::kSum, core::Axis::kColumn),
      Agg(2, 7, {5, 6}, core::AggregationFunction::kSum, core::Axis::kColumn),
      Agg(3, 7, {5, 6}, core::AggregationFunction::kSum, core::Axis::kColumn),
  };
  core::AggreColConfig config;
  config.error_levels.fill(0.0);
  config.split_tables = true;
  const auto result = core::AggreCol(config).Detect(grid);
  for (const auto& aggregation : truth) {
    EXPECT_TRUE(ContainsCanonical(result.aggregations, aggregation))
        << ToString(aggregation);
  }
  const auto scores = eval::Score(result.aggregations, truth);
  EXPECT_EQ(scores.missed, 0);
  EXPECT_EQ(scores.correct, static_cast<int>(truth.size()));
}

}  // namespace
}  // namespace aggrecol::structure
