#include "datagen/corpus.h"
#include "datagen/file_generator.h"

#include "core/aggregation.h"
#include "csv/parser.h"
#include "csv/writer.h"
#include "gtest/gtest.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::datagen {
namespace {

using core::Aggregation;
using core::Axis;

TEST(Generator, DeterministicFromSeed) {
  const GeneratorProfile profile;
  const auto a = GenerateFile(profile, 42, "a.csv");
  const auto b = GenerateFile(profile, 42, "a.csv");
  EXPECT_EQ(a.grid, b.grid);
  ASSERT_EQ(a.annotations.size(), b.annotations.size());
  for (size_t i = 0; i < a.annotations.size(); ++i) {
    EXPECT_EQ(a.annotations[i], b.annotations[i]);
  }
  EXPECT_EQ(a.format, b.format);
}

TEST(Generator, DifferentSeedsDiffer) {
  const GeneratorProfile profile;
  const auto a = GenerateFile(profile, 1, "a.csv");
  const auto b = GenerateFile(profile, 2, "b.csv");
  EXPECT_NE(a.grid, b.grid);
}

TEST(Generator, RolesMatchGridShape) {
  const auto file = GenerateFile(GeneratorProfile{}, 7, "f.csv");
  ASSERT_EQ(static_cast<int>(file.roles.size()), file.grid.rows());
  for (const auto& row : file.roles) {
    EXPECT_EQ(static_cast<int>(row.size()), file.grid.columns());
  }
}

TEST(Generator, AggregateCellsCarryAggregationRole) {
  const auto file = GenerateFile(GeneratorProfile{}, 11, "f.csv");
  for (const auto& annotation : file.annotations) {
    const int row = annotation.axis == Axis::kRow ? annotation.line
                                                  : annotation.aggregate;
    const int col = annotation.axis == Axis::kRow ? annotation.aggregate
                                                  : annotation.line;
    EXPECT_EQ(file.roles[row][col], eval::CellRole::kAggregation)
        << ToString(annotation);
  }
}

// The central ground-truth property: every annotation, re-evaluated on the
// file as a detector would parse it (dialect defaults, elected number
// format, empty-as-zero), reproduces its recorded error level.
class GroundTruthProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroundTruthProperty, AnnotationsAreArithmeticallyConsistent) {
  const auto file = GenerateFile(GeneratorProfile{}, GetParam(), "p.csv");
  const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);
  for (const auto& annotation : file.annotations) {
    const bool row_wise = annotation.axis == Axis::kRow;
    const int agg_row = row_wise ? annotation.line : annotation.aggregate;
    const int agg_col = row_wise ? annotation.aggregate : annotation.line;
    ASSERT_TRUE(numeric.IsNumeric(agg_row, agg_col)) << ToString(annotation);

    std::vector<double> values;
    for (int index : annotation.range) {
      const int row = row_wise ? annotation.line : index;
      const int col = row_wise ? index : annotation.line;
      ASSERT_TRUE(numeric.IsRangeUsable(row, col)) << ToString(annotation);
      values.push_back(numeric.value(row, col));
    }
    const auto calculated = core::Apply(annotation.function, values);
    ASSERT_TRUE(calculated.has_value()) << ToString(annotation);
    const double error =
        core::ErrorLevel(numeric.value(agg_row, agg_col), *calculated);
    EXPECT_NEAR(error, annotation.error, 1e-9) << ToString(annotation);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundTruthProperty,
                         ::testing::Range<uint64_t>(0, 40));

TEST(Corpus, ValidationShapeMatchesPaper) {
  const auto spec = ValidationCorpus();
  EXPECT_EQ(spec.file_count, 385);
  const auto files = GenerateCorpus(spec);
  ASSERT_EQ(files.size(), 385u);
  int without = 0;
  for (const auto& file : files) {
    if (file.annotations.empty()) ++without;
  }
  // The paper's VALIDATION set has 50/385 files without aggregations; the
  // sampled fraction should be in that neighbourhood.
  EXPECT_GT(without, 25);
  EXPECT_LT(without, 80);
}

TEST(Corpus, UnseenFilesAllHaveAggregations) {
  const auto files = GenerateCorpus(UnseenCorpus());
  ASSERT_EQ(files.size(), 81u);
  for (const auto& file : files) {
    EXPECT_FALSE(file.annotations.empty()) << file.name;
  }
}

TEST(Corpus, SumDominatesFunctionMix) {
  const auto files = GenerateCorpus(ValidationCorpus());
  int sum = 0;
  int total = 0;
  for (const auto& file : files) {
    for (const auto& annotation : core::CanonicalizeAll(file.annotations)) {
      ++total;
      if (annotation.function == core::AggregationFunction::kSum) ++sum;
    }
  }
  ASSERT_GT(total, 0);
  // Sum accounts for about 70% of aggregations in the paper (Table 3).
  EXPECT_GT(static_cast<double>(sum) / total, 0.5);
}

TEST(Corpus, RoundingErrorsPresent) {
  const auto files = GenerateCorpus(ValidationCorpus());
  int with_error = 0;
  int total = 0;
  for (const auto& file : files) {
    for (const auto& annotation : file.annotations) {
      ++total;
      if (annotation.error > 1e-9) ++with_error;
    }
  }
  const double fraction = static_cast<double>(with_error) / total;
  // Around 29% in the paper (Sec. 4.1); accept a generous band.
  EXPECT_GT(fraction, 0.10);
  EXPECT_LT(fraction, 0.55);
}

TEST(Corpus, ElectedFormatsAgreeOnEveryCellValue) {
  // The elected format may differ from the serialized one when the content
  // does not pin it down (e.g. no-group formats are subsumed by the grouped
  // ones), but every cell the writing format would parse must parse to the
  // same value under the elected format.
  const auto files = GenerateSmallCorpus(40, 5);
  for (const auto& file : files) {
    const auto elected = numfmt::ElectFormat(file.grid);
    for (int i = 0; i < file.grid.rows(); ++i) {
      for (int j = 0; j < file.grid.columns(); ++j) {
        const std::string_view cell = file.grid.at(i, j);
        const auto written = numfmt::ParseNumber(cell, file.format);
        if (!written.has_value()) continue;
        const auto parsed = numfmt::ParseNumber(cell, elected);
        ASSERT_TRUE(parsed.has_value()) << file.name << " cell '" << cell << "'";
        EXPECT_EQ(*parsed, *written) << file.name << " cell '" << cell << "'";
      }
    }
  }
}

TEST(Corpus, SmallCorpusHelper) {
  const auto files = GenerateSmallCorpus(3, 9);
  EXPECT_EQ(files.size(), 3u);
  EXPECT_NE(files[0].grid, files[1].grid);
}

TEST(Corpus, FilesSerializeToParseableCsv) {
  const auto files = GenerateSmallCorpus(10, 31);
  const csv::Dialect dialect{',', '"'};
  for (const auto& file : files) {
    const std::string text = csv::WriteGrid(file.grid, dialect);
    EXPECT_EQ(csv::ParseGrid(text, dialect), file.grid) << file.name;
  }
}

}  // namespace
}  // namespace aggrecol::datagen
