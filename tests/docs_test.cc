// Keeps the operator docs honest: docs/CLI.md is checked against the
// compiled CLI surface (commands + accepted options, both directions), and
// docs/OBSERVABILITY.md against the counters an instrumented corpus run
// actually emits. AGGRECOL_SOURCE_DIR is injected by tests/CMakeLists.txt.
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "cli/commands.h"
#include "csv/scanner.h"
#include "datagen/corpus.h"
#include "datagen/messy_generator.h"
#include "eval/batch_runner.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "tools/lint/linter.h"

namespace aggrecol {
namespace {

std::string ReadDoc(const std::string& relative) {
  const std::string path = std::string(AGGRECOL_SOURCE_DIR) + "/" + relative;
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "missing " << path;
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

// All --option tokens in a document (without the leading dashes).
std::set<std::string> OptionTokens(const std::string& text) {
  std::set<std::string> tokens;
  const std::regex option_re("--([a-z][a-z0-9-]*)");
  for (std::sregex_iterator it(text.begin(), text.end(), option_re), end;
       it != end; ++it) {
    tokens.insert((*it)[1].str());
  }
  return tokens;
}

TEST(CliDocs, EveryCommandIsDocumented) {
  const std::string doc = ReadDoc("docs/CLI.md");
  for (const std::string& command : cli::CommandNames()) {
    EXPECT_NE(doc.find("aggrecol " + command), std::string::npos)
        << "docs/CLI.md does not document `aggrecol " << command << "`";
  }
}

TEST(CliDocs, EveryAcceptedOptionIsDocumented) {
  const std::string doc = ReadDoc("docs/CLI.md");
  const std::set<std::string> documented = OptionTokens(doc);
  for (const std::string& command : cli::CommandNames()) {
    for (const std::string& option : cli::KnownOptionsFor(command)) {
      EXPECT_TRUE(documented.count(option) > 0)
          << "docs/CLI.md does not document --" << option << " (accepted by `"
          << command << "`)";
    }
  }
}

TEST(CliDocs, EveryDocumentedOptionIsAccepted) {
  // The reverse direction: a flag mentioned in the doc but accepted by no
  // command is stale documentation. The doc is split at the `## aggrecol-lint`
  // heading so the lint binary's flags (parsed in tools/lint/main.cc) only
  // validate inside their own section, not under the main binary's commands.
  std::set<std::string> accepted;
  for (const std::string& command : cli::CommandNames()) {
    for (const std::string& option : cli::KnownOptionsFor(command)) {
      accepted.insert(option);
    }
  }
  const std::string doc = ReadDoc("docs/CLI.md");
  size_t lint_section = doc.find("## aggrecol-lint");
  ASSERT_NE(lint_section, std::string::npos)
      << "docs/CLI.md lost its aggrecol-lint section";
  for (const std::string& token : OptionTokens(doc.substr(0, lint_section))) {
    EXPECT_TRUE(accepted.count(token) > 0)
        << "docs/CLI.md mentions --" << token
        << ", which no command accepts";
  }
  const std::set<std::string> lint_accepted = {"root", "format", "list-rules"};
  for (const std::string& token : OptionTokens(doc.substr(lint_section))) {
    EXPECT_TRUE(lint_accepted.count(token) > 0)
        << "docs/CLI.md's aggrecol-lint section mentions --" << token
        << ", which aggrecol-lint does not accept";
  }
}

TEST(CliDocs, UsageTextMatchesCommandTable) {
  const std::string usage = cli::UsageText();
  for (const std::string& command : cli::CommandNames()) {
    EXPECT_NE(usage.find("aggrecol " + command), std::string::npos)
        << "help text does not mention `aggrecol " << command << "`";
  }
  // The help text must not advertise flags the parser rejects.
  std::set<std::string> accepted;
  for (const std::string& command : cli::CommandNames()) {
    for (const std::string& option : cli::KnownOptionsFor(command)) {
      accepted.insert(option);
    }
  }
  for (const std::string& token : OptionTokens(usage)) {
    EXPECT_TRUE(accepted.count(token) > 0)
        << "help text mentions --" << token << ", which no command accepts";
  }
}

TEST(ObservabilityDocs, EveryEmittedCounterIsDocumented) {
  if (!obs::CompiledIn()) GTEST_SKIP() << "built with AGGRECOL_OBS=OFF";
  const std::string doc = ReadDoc("docs/OBSERVABILITY.md");

  // Drive an instrumented corpus run (with a timeout configured so the
  // deadline-slack path fires too) and collect every counter it emits.
  obs::ScopedMetrics scoped;
  eval::BatchOptions options;
  options.threads = 2;
  options.file_timeout_seconds = 600.0;
  eval::BatchRunner(options).Run(datagen::GenerateSmallCorpus(8, 77));
  const obs::MetricsSnapshot snapshot = obs::Registry::Instance().Snapshot();
  ASSERT_GT(snapshot.counters.size(), 0u);

  // Dynamic name tails (per-function, per-format winners) are documented as
  // `<fn>` / `<format>` placeholders; everything else must appear verbatim.
  auto documented = [&doc](const std::string& name) {
    if (doc.find(name) != std::string::npos) return true;
    const size_t last_dot = name.rfind('.');
    if (last_dot == std::string::npos) return false;
    const std::string stem = name.substr(0, last_dot + 1);
    return doc.find(stem + "<fn>") != std::string::npos ||
           doc.find(stem + "<format>") != std::string::npos;
  };
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_TRUE(documented(name))
        << "docs/OBSERVABILITY.md has no catalog entry for counter " << name;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    EXPECT_TRUE(documented(name))
        << "docs/OBSERVABILITY.md has no catalog entry for gauge " << name;
  }
  for (const auto& histogram : snapshot.histograms) {
    // Spans are documented in the hierarchy diagram by their span.<name>.
    EXPECT_TRUE(documented(histogram.name))
        << "docs/OBSERVABILITY.md has no entry for histogram "
        << histogram.name;
  }
}

TEST(StaticAnalysisDocs, EveryCompiledRuleIsDocumented) {
  const std::string doc = ReadDoc("docs/STATIC_ANALYSIS.md");
  for (const lint::RuleInfo& rule : lint::Rules()) {
    EXPECT_NE(doc.find("`" + rule.id + "`"), std::string::npos)
        << "docs/STATIC_ANALYSIS.md does not document lint rule " << rule.id;
    EXPECT_NE(doc.find(rule.name), std::string::npos)
        << "docs/STATIC_ANALYSIS.md does not mention rule " << rule.id
        << "'s name (" << rule.name << ")";
  }
}

TEST(StaticAnalysisDocs, EveryDocumentedRuleIdIsCompiled) {
  // The reverse direction: an `Ln` rule id in the doc that the registry does
  // not know is stale documentation (or a typo'd id).
  std::set<std::string> compiled;
  for (const lint::RuleInfo& rule : lint::Rules()) {
    compiled.insert(rule.id);
  }
  const std::string doc = ReadDoc("docs/STATIC_ANALYSIS.md");
  const std::regex rule_re("`(L[0-9]+)`");
  for (std::sregex_iterator it(doc.begin(), doc.end(), rule_re), end;
       it != end; ++it) {
    const std::string id = (*it)[1].str();
    EXPECT_TRUE(compiled.count(id) > 0)
        << "docs/STATIC_ANALYSIS.md references rule " << id
        << ", which aggrecol-lint does not implement";
  }
}

TEST(RobustnessDocs, EveryMessyCategoryIsDocumented) {
  const std::string doc = ReadDoc("docs/ROBUSTNESS.md");
  for (datagen::MessyCategory category : datagen::kAllMessyCategories) {
    EXPECT_NE(doc.find("`" + ToString(category) + "`"), std::string::npos)
        << "docs/ROBUSTNESS.md does not document messy category "
        << ToString(category);
  }
}

TEST(RobustnessDocs, EveryDocumentedCategoryIsCompiled) {
  // The reverse direction, scoped to the category table (rows of the form
  // `| `name` | ...`): a listed category the generator does not produce is
  // stale documentation.
  std::set<std::string> compiled;
  for (datagen::MessyCategory category : datagen::kAllMessyCategories) {
    compiled.insert(ToString(category));
  }
  const std::string doc = ReadDoc("docs/ROBUSTNESS.md");
  const std::regex row_re("\\| `([a-z-]+)` \\|");
  for (std::sregex_iterator it(doc.begin(), doc.end(), row_re), end; it != end;
       ++it) {
    const std::string name = (*it)[1].str();
    EXPECT_TRUE(compiled.count(name) > 0)
        << "docs/ROBUSTNESS.md lists category " << name
        << ", which GenerateMessyCorpus does not produce";
  }
}

TEST(IngestDocs, EveryCompiledScanTierIsDocumented) {
  // Forward direction: every tier the scanner enum defines must appear (by
  // its ToString name, backticked) in the INGEST.md tier table.
  const std::string doc = ReadDoc("docs/INGEST.md");
  for (csv::ScanTier tier : csv::kAllScanTiers) {
    const std::string name(csv::ToString(tier));
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "docs/INGEST.md does not document scan tier " << name;
  }
}

TEST(IngestDocs, EveryDocumentedScanTierIsCompiled) {
  // Reverse direction, scoped to the tier table (rows of the form
  // "| `name` | N byte..."): a documented tier the enum does not define is
  // stale documentation.
  std::set<std::string> compiled;
  for (csv::ScanTier tier : csv::kAllScanTiers) {
    compiled.insert(std::string(csv::ToString(tier)));
  }
  const std::string doc = ReadDoc("docs/INGEST.md");
  const std::regex row_re("\\| `([a-z0-9]+)` \\| [0-9]+ byte");
  int rows = 0;
  for (std::sregex_iterator it(doc.begin(), doc.end(), row_re), end; it != end;
       ++it) {
    ++rows;
    const std::string name = (*it)[1].str();
    EXPECT_TRUE(compiled.count(name) > 0)
        << "docs/INGEST.md lists scan tier " << name
        << ", which csv::ScanTier does not define";
  }
  EXPECT_EQ(rows, static_cast<int>(csv::kAllScanTiers.size()))
      << "docs/INGEST.md tier table row count drifted from the enum";
}

TEST(PerformanceDocs, EveryCommittedBenchKeyIsDocumented) {
  // Every key in every committed BENCH_*.json baseline must be explained in
  // PERFORMANCE.md's schema section (category section names live in
  // ROBUSTNESS.md), so a bench schema change without a doc update fails.
  const std::string doc =
      ReadDoc("docs/PERFORMANCE.md") + ReadDoc("docs/ROBUSTNESS.md");
  const std::regex key_re("\"([A-Za-z0-9_<>-]+)\"\\s*:");
  int baselines = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::path(AGGRECOL_SOURCE_DIR))) {
    const std::string filename = entry.path().filename().string();
    if (filename.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json") {
      continue;
    }
    ++baselines;
    std::ifstream in(entry.path());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    for (std::sregex_iterator it(json.begin(), json.end(), key_re), end;
         it != end; ++it) {
      const std::string key = (*it)[1].str();
      EXPECT_NE(doc.find(key), std::string::npos)
          << filename << " key `" << key
          << "` is not documented in docs/PERFORMANCE.md (or, for category "
             "names, docs/ROBUSTNESS.md)";
    }
  }
  EXPECT_EQ(baselines, 3) << "committed BENCH_*.json baseline count changed; "
                             "update docs/PERFORMANCE.md's baseline table";
}

TEST(PerformanceDocs, ScreeningMatrixNamesEveryStage1Section) {
  // The screening coverage matrix maps each (stage x function) combination
  // to the benchmark that guards it, so every comparison section of the
  // stage-1 bench must be referenced inside the matrix section — a new bench
  // section without a matrix entry (or a renamed section leaving a stale
  // entry) fails here.
  const std::string doc = ReadDoc("docs/PERFORMANCE.md");
  const size_t matrix = doc.find("## Screening coverage matrix");
  ASSERT_NE(matrix, std::string::npos)
      << "docs/PERFORMANCE.md lost its screening coverage matrix";
  const std::string section =
      doc.substr(matrix, doc.find("\n## ", matrix + 1) - matrix);
  for (const char* name :
       {"wide_adjacency", "column_axis", "window_ratio_columns",
        "stage2_collective", "extension_screen"}) {
    EXPECT_NE(section.find(name), std::string::npos)
        << "the screening coverage matrix does not reference bench section "
        << name;
  }
}

TEST(Docs, CrossReferencedPagesExist) {
  // The pages the README and ALGORITHM link to must exist; their content is
  // checked above and by the CI link checker.
  for (const char* page :
       {"docs/ARCHITECTURE.md", "docs/CLI.md", "docs/OBSERVABILITY.md",
        "docs/ALGORITHM.md", "docs/STATIC_ANALYSIS.md", "docs/PERFORMANCE.md",
        "docs/ROBUSTNESS.md", "docs/INGEST.md", "README.md"}) {
    EXPECT_FALSE(ReadDoc(page).empty()) << page;
  }
}

}  // namespace
}  // namespace aggrecol
