#include "core/aggregation.h"

#include "eval/annotations.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;

TEST(ErrorLevel, NormalizedByObservedValue) {
  // Definition 5: e = |(r' - r) / r|.
  EXPECT_DOUBLE_EQ(ErrorLevel(100.0, 103.0), 0.03);
  EXPECT_DOUBLE_EQ(ErrorLevel(100.0, 97.0), 0.03);
  EXPECT_DOUBLE_EQ(ErrorLevel(-100.0, -97.0), 0.03);
  EXPECT_DOUBLE_EQ(ErrorLevel(50.0, 50.0), 0.0);
}

TEST(ErrorLevel, AbsoluteDifferenceWhenObservedIsZero) {
  EXPECT_DOUBLE_EQ(ErrorLevel(0.0, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(ErrorLevel(0.0, 0.0), 0.0);
}

TEST(ErrorLevel, SlackAbsorbsFloatNoise) {
  EXPECT_TRUE(WithinErrorLevel(1e-12, 0.0));
  EXPECT_TRUE(WithinErrorLevel(0.01, 0.01));
  EXPECT_FALSE(WithinErrorLevel(0.02, 0.01));
}

TEST(Aggregation, EqualityIgnoresError) {
  const Aggregation a = Agg(1, 2, {3, 4}, AggregationFunction::kSum, Axis::kRow, 0.0);
  const Aggregation b = Agg(1, 2, {3, 4}, AggregationFunction::kSum, Axis::kRow, 0.5);
  EXPECT_EQ(a, b);
}

TEST(Aggregation, EqualityDiscriminates) {
  const Aggregation base = Agg(1, 2, {3, 4}, AggregationFunction::kSum);
  EXPECT_NE(base, Agg(2, 2, {3, 4}, AggregationFunction::kSum));
  EXPECT_NE(base, Agg(1, 5, {3, 4}, AggregationFunction::kSum));
  EXPECT_NE(base, Agg(1, 2, {3, 5}, AggregationFunction::kSum));
  EXPECT_NE(base, Agg(1, 2, {3, 4}, AggregationFunction::kAverage));
  EXPECT_NE(base, Agg(1, 2, {3, 4}, AggregationFunction::kSum, Axis::kColumn));
}

TEST(Aggregation, ToStringUsesPaperNotation) {
  const Aggregation a = Agg(2, 1, {2, 3, 4}, AggregationFunction::kSum);
  EXPECT_EQ(ToString(a), "(row:2, 1 <- {2, 3, 4}, sum, e=0)");
}

TEST(Pattern, StripsLineIndex) {
  const Aggregation a = Agg(7, 1, {2, 3}, AggregationFunction::kAverage);
  const Aggregation b = Agg(9, 1, {2, 3}, AggregationFunction::kAverage);
  EXPECT_EQ(PatternOf(a), PatternOf(b));
  EXPECT_NE(PatternOf(a), PatternOf(Agg(7, 1, {2, 4}, AggregationFunction::kAverage)));
}

TEST(Canonicalize, DifferenceBecomesSum) {
  // A = B - C  ==>  B = A + C (Sec. 4.3.2).
  const Aggregation difference = Agg(3, 5, {6, 7}, AggregationFunction::kDifference);
  const Aggregation canonical = Canonicalize(difference);
  EXPECT_EQ(canonical.function, AggregationFunction::kSum);
  EXPECT_EQ(canonical.aggregate, 6);
  EXPECT_EQ(canonical.range, (std::vector<int>{5, 7}));
  EXPECT_EQ(canonical.line, 3);
}

TEST(Canonicalize, SortsCommutativeRanges) {
  const Aggregation sum = Agg(0, 9, {8, 2, 5}, AggregationFunction::kSum);
  EXPECT_EQ(Canonicalize(sum).range, (std::vector<int>{2, 5, 8}));
  // Pairwise order is meaningful and preserved.
  const Aggregation division = Agg(0, 9, {8, 2}, AggregationFunction::kDivision);
  EXPECT_EQ(Canonicalize(division).range, (std::vector<int>{8, 2}));
}

TEST(Canonicalize, DifferenceAndEquivalentSumUnify) {
  // net = gross - expense  vs  gross = net + expense.
  const Aggregation difference = Agg(1, 0, {1, 2}, AggregationFunction::kDifference);
  const Aggregation sum = Agg(1, 1, {2, 0}, AggregationFunction::kSum);
  EXPECT_EQ(Canonicalize(difference), Canonicalize(sum));
}

TEST(CanonicalizeAll, Deduplicates) {
  const std::vector<Aggregation> in = {
      Agg(0, 1, {2, 3}, AggregationFunction::kSum),
      Agg(0, 1, {3, 2}, AggregationFunction::kSum),
      Agg(0, 2, {1, 3}, AggregationFunction::kDifference),
  };
  const auto out = CanonicalizeAll(in);
  // The two sums unify; the difference becomes 1 = 2 + 3 which also unifies.
  EXPECT_EQ(out.size(), 1u);
}

TEST(Annotations, SerializeParseRoundTrip) {
  const std::vector<Aggregation> in = {
      Agg(2, 1, {2, 3, 4}, AggregationFunction::kSum, Axis::kRow, 0.0),
      Agg(5, 0, {1, 2}, AggregationFunction::kDivision, Axis::kColumn, 0.025),
      Agg(1, 9, {7, 8}, AggregationFunction::kRelativeChange, Axis::kRow, 0.5),
  };
  const std::string text = eval::SerializeAnnotations(in);
  const auto parsed = eval::ParseAnnotations(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ((*parsed)[i], in[i]);
    EXPECT_NEAR((*parsed)[i].error, in[i].error, 1e-12);
  }
}

TEST(Annotations, ParseRejectsMalformedInput) {
  EXPECT_FALSE(eval::ParseAnnotations("row,1,2,sum\n").has_value());
  EXPECT_FALSE(eval::ParseAnnotations("diag,1,2,sum,3;4,0\n").has_value());
  EXPECT_FALSE(eval::ParseAnnotations("row,x,2,sum,3;4,0\n").has_value());
  EXPECT_FALSE(eval::ParseAnnotations("row,1,2,sigma,3;4,0\n").has_value());
}

TEST(Annotations, ParseSkipsCommentsAndBlanks) {
  const auto parsed =
      eval::ParseAnnotations("# header\n\nrow,1,2,sum,3;4,0\n  \n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

}  // namespace
}  // namespace aggrecol::core
