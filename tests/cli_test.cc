#include <cstdio>
#include <filesystem>
#include <sstream>

#include "cli/arg_parser.h"
#include "cli/commands.h"
#include "eval/annotations.h"
#include "gtest/gtest.h"
#include "util/file_io.h"

namespace aggrecol::cli {
namespace {

TEST(ArgParser, PositionalsAndOptions) {
  const auto args = ArgParser::Parse(
      {"detect", "file.csv", "--coverage=0.5", "--window", "7", "--no-empty-as-zero"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "detect");
  EXPECT_EQ(args.positionals()[1], "file.csv");
  EXPECT_DOUBLE_EQ(args.GetDouble("coverage", 0.7), 0.5);
  EXPECT_EQ(args.GetInt("window", 10), 7);
  EXPECT_TRUE(args.Has("no-empty-as-zero"));
  EXPECT_FALSE(args.GetString("no-empty-as-zero").has_value());
}

TEST(ArgParser, SwitchBeforeOption) {
  const auto args = ArgParser::Parse({"--flag", "--key=value"});
  EXPECT_TRUE(args.Has("flag"));
  EXPECT_EQ(args.GetString("key").value_or(""), "value");
}

TEST(ArgParser, ListsAndDefaults) {
  const auto args = ArgParser::Parse({"--functions=sum,division,"});
  const auto list = args.GetList("functions");
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], "sum");
  EXPECT_EQ(list[1], "division");
  EXPECT_TRUE(args.GetList("absent").empty());
  EXPECT_DOUBLE_EQ(args.GetDouble("absent", 1.5), 1.5);
}

TEST(ArgParser, MalformedNumbersFallBack) {
  const auto args = ArgParser::Parse({"--coverage=abc", "--window=7x"});
  EXPECT_DOUBLE_EQ(args.GetDouble("coverage", 0.7), 0.7);
  EXPECT_EQ(args.GetInt("window", 10), 10);
}

TEST(ArgParser, UnknownOptions) {
  const auto args = ArgParser::Parse({"--good=1", "--typo=2"});
  const auto unknown = args.UnknownOptions({"good"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(ConfigFromArgs, UniformErrorLevel) {
  core::AggreColConfig config;
  std::ostringstream err;
  ASSERT_TRUE(ConfigFromArgs(ArgParser::Parse({"--error-level=0.02"}), &config, err));
  for (auto function : core::kAllFunctions) {
    EXPECT_DOUBLE_EQ(config.error_level(function), 0.02);
  }
}

TEST(ConfigFromArgs, PerFunctionErrorLevels) {
  core::AggreColConfig config;
  std::ostringstream err;
  ASSERT_TRUE(ConfigFromArgs(
      ArgParser::Parse({"--error-level=sum:0.005,relative-change:0.07"}), &config, err));
  EXPECT_DOUBLE_EQ(config.error_level(core::AggregationFunction::kSum), 0.005);
  EXPECT_DOUBLE_EQ(config.error_level(core::AggregationFunction::kRelativeChange), 0.07);
  // Others keep defaults.
  EXPECT_DOUBLE_EQ(config.error_level(core::AggregationFunction::kDivision), 0.03);
}

TEST(ConfigFromArgs, RejectsUnknownFunction) {
  core::AggreColConfig config;
  std::ostringstream err;
  EXPECT_FALSE(
      ConfigFromArgs(ArgParser::Parse({"--functions=sum,median"}), &config, err));
  EXPECT_NE(err.str().find("median"), std::string::npos);
}

TEST(ConfigFromArgs, StagesAndAxis) {
  core::AggreColConfig config;
  std::ostringstream err;
  ASSERT_TRUE(ConfigFromArgs(ArgParser::Parse({"--stages=i", "--axis=rows"}),
                             &config, err));
  EXPECT_FALSE(config.run_collective);
  EXPECT_FALSE(config.run_supplemental);
  EXPECT_TRUE(config.detect_rows);
  EXPECT_FALSE(config.detect_columns);

  core::AggreColConfig bad;
  EXPECT_FALSE(ConfigFromArgs(ArgParser::Parse({"--stages=xyz"}), &bad, err));
  EXPECT_FALSE(ConfigFromArgs(ArgParser::Parse({"--axis=diagonal"}), &bad, err));
}

class CliEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "aggrecol_cli_test";
    std::filesystem::create_directories(dir_);
    csv_path_ = (dir_ / "table.csv").string();
    util::WriteFile(csv_path_,
                    "Item,A,B,Sum\n"
                    "x,1,4,5\n"
                    "y,2,5,7\n"
                    "z,3,6,9\n");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  int Run(const std::vector<std::string>& args, std::string* out_text = nullptr,
          std::string* err_text = nullptr) {
    std::ostringstream out;
    std::ostringstream err;
    const int code = RunCli(args, out, err);
    if (out_text != nullptr) *out_text = out.str();
    if (err_text != nullptr) *err_text = err.str();
    return code;
  }

  std::filesystem::path dir_;
  std::string csv_path_;
};

TEST_F(CliEndToEnd, DetectText) {
  std::string out;
  ASSERT_EQ(Run({"detect", csv_path_}, &out), 0);
  // The relation may surface as sum or as its difference mirror form.
  EXPECT_TRUE(out.find("sum") != std::string::npos ||
              out.find("difference") != std::string::npos)
      << out;
  EXPECT_NE(out.find("aggregations:"), std::string::npos);
  EXPECT_EQ(out.find("aggregations: 0"), std::string::npos);
}

TEST_F(CliEndToEnd, DetectAnnotationsRoundTrip) {
  std::string out;
  ASSERT_EQ(Run({"detect", csv_path_, "--output=annotations", "--error-level=0"},
                &out),
            0);
  const auto parsed = eval::ParseAnnotations(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->empty());
}

TEST_F(CliEndToEnd, DetectGridRendering) {
  std::string out;
  ASSERT_EQ(Run({"detect", csv_path_, "--output=grid"}, &out), 0);
  // At least one cell is bracketed as an aggregate and the legend prints.
  EXPECT_NE(out.find("["), std::string::npos);
  EXPECT_NE(out.find("aggregation(s); [cell] = aggregate"), std::string::npos);
}

TEST_F(CliEndToEnd, EvaluateAgainstDetections) {
  // Detections evaluated against themselves must be perfect.
  std::string annotations;
  ASSERT_EQ(Run({"detect", csv_path_, "--output=annotations"}, &annotations), 0);
  const std::string truth_path = (dir_ / "truth.annotations").string();
  ASSERT_TRUE(util::WriteFile(truth_path, annotations));
  std::string out;
  ASSERT_EQ(Run({"evaluate", csv_path_, truth_path}, &out), 0);
  EXPECT_NE(out.find("1.000"), std::string::npos);
}

TEST_F(CliEndToEnd, Sniff) {
  std::string out;
  ASSERT_EQ(Run({"sniff", csv_path_}, &out), 0);
  EXPECT_NE(out.find("delimiter=','"), std::string::npos);
  EXPECT_NE(out.find("4 rows x 4 columns"), std::string::npos);
}

TEST_F(CliEndToEnd, GenerateWritesCorpus) {
  const std::string out_dir = (dir_ / "corpus").string();
  std::filesystem::create_directories(out_dir);
  std::string out;
  ASSERT_EQ(Run({"generate", "--out=" + out_dir, "--count=2", "--seed=5"}, &out), 0);
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/file_0.csv"));
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/file_1.annotations"));

  // The generated pair must evaluate cleanly end to end.
  std::string eval_out;
  ASSERT_EQ(Run({"evaluate", out_dir + "/file_0.csv", out_dir + "/file_0.annotations"},
                &eval_out),
            0);
  EXPECT_NE(eval_out.find("overall"), std::string::npos);
}

TEST_F(CliEndToEnd, GenerateMessyWritesAdversarialCorpus) {
  const std::string out_dir = (dir_ / "messy").string();
  std::filesystem::create_directories(out_dir);
  std::string out;
  ASSERT_EQ(Run({"generate", "--out=" + out_dir, "--messy", "--per-category=1",
                 "--seed=7"},
                &out),
            0);
  EXPECT_NE(out.find("6 messy file pairs"), std::string::npos) << out;
  // One file pair per category, named after the category.
  EXPECT_TRUE(std::filesystem::exists(out_dir + "/messy_ambiguous-dialect_0.csv"));
  EXPECT_TRUE(
      std::filesystem::exists(out_dir + "/messy_multi-table_0.annotations"));

  // The messy pairs run through the sniff-parse-detect benchmark path.
  std::string bench_out;
  ASSERT_EQ(Run({"benchmark", out_dir, "--split-tables"}, &bench_out), 0);
  EXPECT_NE(bench_out.find("6 files"), std::string::npos) << bench_out;
}

TEST_F(CliEndToEnd, ErrorsAndExitCodes) {
  std::string err;
  EXPECT_EQ(Run({"detect"}, nullptr, &err), 2);
  EXPECT_EQ(Run({"detect", "/nonexistent/x.csv"}, nullptr, &err), 1);
  EXPECT_EQ(Run({"frobnicate"}, nullptr, &err), 2);
  EXPECT_EQ(Run({}, nullptr, &err), 2);
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_EQ(Run({"detect", csv_path_, "--coverge=0.5"}, nullptr, &err), 2);
  EXPECT_NE(err.find("coverge"), std::string::npos);
}

}  // namespace
}  // namespace aggrecol::cli
