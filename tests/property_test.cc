// Pipeline-wide invariants, checked over a sweep of generated files: every
// reported aggregation must be arithmetically valid under its configured
// tolerance, structurally well-formed (same-line, r not in E, Table-1
// arities), and the stage snapshots must nest correctly.
#include <algorithm>

#include "core/aggrecol.h"
#include "datagen/file_generator.h"
#include "gtest/gtest.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol {
namespace {

class PipelineProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  static core::AggreColConfig Config() { return core::AggreColConfig{}; }
};

double CellValue(const numfmt::NumericGrid& numeric, const core::Aggregation& a,
                 int index) {
  return a.axis == core::Axis::kRow ? numeric.value(a.line, index)
                                    : numeric.value(index, a.line);
}

TEST_P(PipelineProperty, DetectionsAreArithmeticallyValid) {
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, GetParam(), "p.csv");
  const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);
  const auto config = Config();
  const auto result = core::AggreCol(config).Detect(numeric);
  for (const auto& aggregation : result.aggregations) {
    std::vector<double> values;
    for (int index : aggregation.range) {
      values.push_back(CellValue(numeric, aggregation, index));
    }
    const auto calculated = core::Apply(aggregation.function, values);
    ASSERT_TRUE(calculated.has_value()) << ToString(aggregation);
    const double observed = CellValue(numeric, aggregation, aggregation.aggregate);
    const double error = core::ErrorLevel(observed, *calculated);
    EXPECT_TRUE(core::WithinErrorLevel(error, config.error_level(aggregation.function)))
        << ToString(aggregation) << " error " << error;
    // The reported error matches the recomputed one.
    EXPECT_NEAR(error, aggregation.error, 1e-9) << ToString(aggregation);
  }
}

TEST_P(PipelineProperty, DetectionsAreStructurallyWellFormed) {
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, GetParam(), "p.csv");
  const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);
  const auto result = core::AggreCol(Config()).Detect(numeric);
  for (const auto& aggregation : result.aggregations) {
    const int line_length = aggregation.axis == core::Axis::kRow
                                ? numeric.columns()
                                : numeric.rows();
    const int line_count = aggregation.axis == core::Axis::kRow
                               ? numeric.rows()
                               : numeric.columns();
    // Indices in bounds; the aggregate is not part of its own range (r ∉ E).
    ASSERT_GE(aggregation.line, 0);
    ASSERT_LT(aggregation.line, line_count);
    ASSERT_GE(aggregation.aggregate, 0);
    ASSERT_LT(aggregation.aggregate, line_length);
    for (int index : aggregation.range) {
      ASSERT_GE(index, 0);
      ASSERT_LT(index, line_length);
      EXPECT_NE(index, aggregation.aggregate) << ToString(aggregation);
    }
    // Table-1 arities (two minimum everywhere, exactly two for pairwise).
    if (core::TraitsOf(aggregation.function).pairwise) {
      EXPECT_EQ(aggregation.range.size(), 2u) << ToString(aggregation);
    } else {
      EXPECT_GE(aggregation.range.size(), 2u) << ToString(aggregation);
    }
    // Aggregates are explicit numbers, ranges are range-usable cells.
    const bool row_wise = aggregation.axis == core::Axis::kRow;
    EXPECT_TRUE(row_wise
                    ? numeric.IsNumeric(aggregation.line, aggregation.aggregate)
                    : numeric.IsNumeric(aggregation.aggregate, aggregation.line))
        << ToString(aggregation);
    for (int index : aggregation.range) {
      EXPECT_TRUE(row_wise ? numeric.IsRangeUsable(aggregation.line, index)
                           : numeric.IsRangeUsable(index, aggregation.line))
          << ToString(aggregation);
    }
    // No duplicate range elements.
    std::vector<int> sorted = aggregation.range;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << ToString(aggregation);
  }
}

TEST_P(PipelineProperty, StageSnapshotsNest) {
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, GetParam(), "p.csv");
  const auto result = core::AggreCol(Config()).Detect(file.grid);
  // Collective ⊆ individual; final ⊇ collective.
  for (const auto& aggregation : result.collective_stage) {
    EXPECT_NE(std::find(result.individual_stage.begin(),
                        result.individual_stage.end(), aggregation),
              result.individual_stage.end())
        << ToString(aggregation);
    EXPECT_NE(std::find(result.aggregations.begin(), result.aggregations.end(),
                        aggregation),
              result.aggregations.end())
        << ToString(aggregation);
  }
  EXPECT_GE(result.individual_stage.size(), result.collective_stage.size());
  EXPECT_GE(result.aggregations.size(), result.collective_stage.size());
}

TEST_P(PipelineProperty, NoDuplicateDetections) {
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, GetParam(), "p.csv");
  const auto result = core::AggreCol(Config()).Detect(file.grid);
  for (size_t i = 0; i < result.aggregations.size(); ++i) {
    for (size_t j = i + 1; j < result.aggregations.size(); ++j) {
      EXPECT_FALSE(result.aggregations[i] == result.aggregations[j])
          << ToString(result.aggregations[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range<uint64_t>(100, 125));

}  // namespace
}  // namespace aggrecol
