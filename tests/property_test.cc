// Pipeline-wide invariants, checked over a sweep of generated files: every
// reported aggregation must be arithmetically valid under its configured
// tolerance, structurally well-formed (same-line, r not in E, Table-1
// arities), and the stage snapshots must nest correctly.
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/aggrecol.h"
#include "csv/parser.h"
#include "csv/sniffer.h"
#include "csv/writer.h"
#include "datagen/file_generator.h"
#include "gtest/gtest.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol {
namespace {

class PipelineProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  static core::AggreColConfig Config() { return core::AggreColConfig{}; }
};

double CellValue(const numfmt::NumericGrid& numeric, const core::Aggregation& a,
                 int index) {
  return a.axis == core::Axis::kRow ? numeric.value(a.line, index)
                                    : numeric.value(index, a.line);
}

TEST_P(PipelineProperty, DetectionsAreArithmeticallyValid) {
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, GetParam(), "p.csv");
  const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);
  const auto config = Config();
  const auto result = core::AggreCol(config).Detect(numeric);
  for (const auto& aggregation : result.aggregations) {
    std::vector<double> values;
    for (int index : aggregation.range) {
      values.push_back(CellValue(numeric, aggregation, index));
    }
    const auto calculated = core::Apply(aggregation.function, values);
    ASSERT_TRUE(calculated.has_value()) << ToString(aggregation);
    const double observed = CellValue(numeric, aggregation, aggregation.aggregate);
    const double error = core::ErrorLevel(observed, *calculated);
    EXPECT_TRUE(core::WithinErrorLevel(error, config.error_level(aggregation.function)))
        << ToString(aggregation) << " error " << error;
    // The reported error matches the recomputed one.
    EXPECT_NEAR(error, aggregation.error, 1e-9) << ToString(aggregation);
  }
}

TEST_P(PipelineProperty, DetectionsAreStructurallyWellFormed) {
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, GetParam(), "p.csv");
  const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);
  const auto result = core::AggreCol(Config()).Detect(numeric);
  for (const auto& aggregation : result.aggregations) {
    const int line_length = aggregation.axis == core::Axis::kRow
                                ? numeric.columns()
                                : numeric.rows();
    const int line_count = aggregation.axis == core::Axis::kRow
                               ? numeric.rows()
                               : numeric.columns();
    // Indices in bounds; the aggregate is not part of its own range (r ∉ E).
    ASSERT_GE(aggregation.line, 0);
    ASSERT_LT(aggregation.line, line_count);
    ASSERT_GE(aggregation.aggregate, 0);
    ASSERT_LT(aggregation.aggregate, line_length);
    for (int index : aggregation.range) {
      ASSERT_GE(index, 0);
      ASSERT_LT(index, line_length);
      EXPECT_NE(index, aggregation.aggregate) << ToString(aggregation);
    }
    // Table-1 arities (two minimum everywhere, exactly two for pairwise).
    if (core::TraitsOf(aggregation.function).pairwise) {
      EXPECT_EQ(aggregation.range.size(), 2u) << ToString(aggregation);
    } else {
      EXPECT_GE(aggregation.range.size(), 2u) << ToString(aggregation);
    }
    // Aggregates are explicit numbers, ranges are range-usable cells.
    const bool row_wise = aggregation.axis == core::Axis::kRow;
    EXPECT_TRUE(row_wise
                    ? numeric.IsNumeric(aggregation.line, aggregation.aggregate)
                    : numeric.IsNumeric(aggregation.aggregate, aggregation.line))
        << ToString(aggregation);
    for (int index : aggregation.range) {
      EXPECT_TRUE(row_wise ? numeric.IsRangeUsable(aggregation.line, index)
                           : numeric.IsRangeUsable(index, aggregation.line))
          << ToString(aggregation);
    }
    // No duplicate range elements.
    std::vector<int> sorted = aggregation.range;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << ToString(aggregation);
  }
}

TEST_P(PipelineProperty, StageSnapshotsNest) {
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, GetParam(), "p.csv");
  const auto result = core::AggreCol(Config()).Detect(file.grid);
  // Collective ⊆ individual; final ⊇ collective.
  for (const auto& aggregation : result.collective_stage) {
    EXPECT_NE(std::find(result.individual_stage.begin(),
                        result.individual_stage.end(), aggregation),
              result.individual_stage.end())
        << ToString(aggregation);
    EXPECT_NE(std::find(result.aggregations.begin(), result.aggregations.end(),
                        aggregation),
              result.aggregations.end())
        << ToString(aggregation);
  }
  EXPECT_GE(result.individual_stage.size(), result.collective_stage.size());
  EXPECT_GE(result.aggregations.size(), result.collective_stage.size());
}

TEST_P(PipelineProperty, NoDuplicateDetections) {
  const auto file =
      datagen::GenerateFile(datagen::GeneratorProfile{}, GetParam(), "p.csv");
  const auto result = core::AggreCol(Config()).Detect(file.grid);
  for (size_t i = 0; i < result.aggregations.size(); ++i) {
    for (size_t j = i + 1; j < result.aggregations.size(); ++j) {
      EXPECT_FALSE(result.aggregations[i] == result.aggregations[j])
          << ToString(result.aggregations[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range<uint64_t>(100, 125));

// ---------------------------------------------------------------------------
// Dialect round-trip property: writer -> sniffer -> parser recovers the
// exact grid for every dialect, over randomized grid content.
//
// Two input classes are excluded as ambiguous-by-construction, not as
// implementation limits (TODO(sniffer): revisit if the scoring model gains a
// language model over cell content):
//   - single-column grids: no delimiter ever appears, so width statistics
//     carry no evidence and any elected dialect is a guess;
//   - grids where EVERY cell is a decimal-comma number ("12,5"): under ','
//     the file splits into twice as many perfectly regular, perfectly
//     numeric columns — "1,2;3,4" genuinely has two readings. The generator
//     therefore places at most one decimal-comma cell per grid.
// ---------------------------------------------------------------------------

class DialectRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

csv::Grid RandomGrid(uint64_t seed, const csv::Dialect& dialect) {
  std::mt19937_64 rng(seed);
  const auto below = [&](int bound) {
    return static_cast<int>(rng() % static_cast<uint64_t>(bound));
  };
  const int rows = 2 + below(11);
  const int columns = 2 + below(7);  // >= 2: see ambiguity note above
  csv::Grid grid(rows, columns);
  static const char* const kLabels[] = {"alpha", "beta",  "gamma", "Total",
                                        "north", "south", "rate",  "n.a."};
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < columns; ++j) {
      const int kind = below(100);
      std::string cell;
      if (kind < 55) {  // plain number, optionally decimal-dot / sign / %
        if (below(4) == 0) cell += '-';
        cell += std::to_string(below(100000));
        if (below(3) == 0) cell += "." + std::to_string(below(100));
        if (below(10) == 0) cell += '%';
      } else if (kind < 80) {
        cell = kLabels[below(8)];
      } else if (kind < 88) {
        // spicy: embedded active delimiter / quote / newline, all of which
        // the writer must quote-protect.
        cell = std::string("x") + dialect.delimiter + "y";
        if (below(2) == 0) cell += dialect.quote;
        if (below(3) == 0) cell += "\nz";
      } else if (kind < 94) {
        cell = "";  // empty
      } else {
        // foreign structural character inside a label ("Berlin; Ost").
        static const char kForeign[] = {';', '|', '\t', '\''};
        cell = std::string(kLabels[below(8)]) + kForeign[below(4)] + " q";
      }
      grid.set(i, j, cell);
    }
  }
  // At most one decimal-comma cell per grid (ambiguity note above).
  if (below(2) == 0) {
    grid.set(below(rows), below(columns),
             std::to_string(below(1000)) + "," + std::to_string(below(100)));
  }
  return grid;
}

TEST_P(DialectRoundTripProperty, WriterSnifferParserRecoverExactGrid) {
  const csv::Dialect dialects[] = {
      {',', '"'},  {';', '"'},        {'\t', '"'},      {'|', '"'},
      {',', '\''}, {';', '"', '\\'},  {',', '"', '\\'},
  };
  for (const csv::Dialect& dialect : dialects) {
    const csv::Grid grid = RandomGrid(GetParam(), dialect);
    const std::string text = csv::WriteGrid(grid, dialect);
    const auto sniffed = csv::SniffDialect(text);
    // The elected dialect need not equal the writing dialect byte-for-byte
    // (an escape-free file elects escape '\0'); what must hold is exact
    // recovery of the content.
    EXPECT_EQ(csv::ParseGrid(text, sniffed.dialect), grid)
        << "seed " << GetParam() << " dialect " << ToString(dialect)
        << " sniffed " << ToString(sniffed.dialect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DialectRoundTripProperty,
                         ::testing::Range<uint64_t>(9000, 9060));

}  // namespace
}  // namespace aggrecol
