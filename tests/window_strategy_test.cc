#include "core/window_strategy.h"

#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::AllActive;
using aggrecol::testing::Contains;
using aggrecol::testing::MakeNumeric;

TEST(Window, DifferenceDetection) {
  // net = gross - expense, operands to the right of the aggregate.
  const auto grid = MakeNumeric({{"6", "10", "4"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDifference, 0.0, 10);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kDifference)));
}

TEST(Window, DifferenceOrderMatters) {
  const auto grid = MakeNumeric({{"6", "10", "4"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDifference, 0.0, 10);
  // 4 - 10 = -6 != 6 must not be reported.
  EXPECT_FALSE(Contains(found, Agg(0, 0, {2, 1}, AggregationFunction::kDifference)));
}

TEST(Window, DivisionDetection) {
  const auto grid = MakeNumeric({{"58", "64", "0.90625"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDivision, 0.0, 10);
  // 0.90625 = 58 / 64, operands to the left.
  EXPECT_TRUE(Contains(found, Agg(0, 2, {0, 1}, AggregationFunction::kDivision)));
}

TEST(Window, DivisionByZeroSkipped) {
  const auto grid = MakeNumeric({{"5", "10", "0"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDivision, 0.0, 10);
  EXPECT_FALSE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kDivision)));
}

TEST(Window, RelativeChangeDetection) {
  // change = (125 - 100) / 100 = 0.25 with B=100 (col 0), C=125 (col 1).
  const auto grid = MakeNumeric({{"100", "125", "0.25"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kRelativeChange, 0.0, 10);
  EXPECT_TRUE(Contains(found, Agg(0, 2, {0, 1}, AggregationFunction::kRelativeChange)));
}

TEST(Window, RelativeChangeFromZeroSkipped) {
  const auto grid = MakeNumeric({{"0", "125", "1"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kRelativeChange, 0.0, 10);
  EXPECT_FALSE(Contains(found, Agg(0, 2, {0, 1}, AggregationFunction::kRelativeChange)));
}

TEST(Window, OperandsBeyondWindowAreMissed) {
  // Aggregate at column 0; operands at columns 4 and 5; window of 3 sees only
  // columns 1-3 — the paper's fixed-window false-negative mode (Sec. 4.5.2).
  const auto grid = MakeNumeric({{"6", "70", "80", "90", "10", "4"}});
  const auto narrow = DetectWindowPairwise(grid, AllActive(grid), 0,
                                           AggregationFunction::kDifference, 0.0, 3);
  EXPECT_FALSE(Contains(narrow, Agg(0, 0, {4, 5}, AggregationFunction::kDifference)));
  const auto wide = DetectWindowPairwise(grid, AllActive(grid), 0,
                                         AggregationFunction::kDifference, 0.0, 5);
  EXPECT_TRUE(Contains(wide, Agg(0, 0, {4, 5}, AggregationFunction::kDifference)));
}

TEST(Window, OperandsMustShareOneSide) {
  // B left, C right of the aggregate: each side is searched separately, so
  // the pair (B, C) straddling the aggregate is not examined.
  const auto grid = MakeNumeric({{"10", "6", "4"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDifference, 0.0, 10);
  EXPECT_FALSE(Contains(found, Agg(0, 1, {0, 2}, AggregationFunction::kDifference)));
}

TEST(Window, InactiveColumnsExcluded) {
  const auto grid = MakeNumeric({{"6", "10", "4"}});
  std::vector<bool> active = {true, true, false};
  const auto found = DetectWindowPairwise(grid, active, 0,
                                          AggregationFunction::kDifference, 0.0, 10);
  EXPECT_FALSE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kDifference)));
}

TEST(Window, ToleranceAdmitsRoundedRatios) {
  // 0.91 vs 58/64 = 0.90625: error ~0.41%.
  const auto grid = MakeNumeric({{"58", "64", "0.91"}});
  const auto strict = DetectWindowPairwise(grid, AllActive(grid), 0,
                                           AggregationFunction::kDivision, 0.0, 10);
  EXPECT_FALSE(Contains(strict, Agg(0, 2, {0, 1}, AggregationFunction::kDivision)));
  const auto tolerant = DetectWindowPairwise(grid, AllActive(grid), 0,
                                             AggregationFunction::kDivision, 0.01, 10);
  EXPECT_TRUE(Contains(tolerant, Agg(0, 2, {0, 1}, AggregationFunction::kDivision)));
}

TEST(Window, ZeroLikeCellsUsableAsOperands) {
  // difference 10 - 0(empty) = 10.
  const auto grid = MakeNumeric({{"10", "10", ""}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDifference, 0.0, 10);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kDifference)));
}

TEST(Window, AllMatchingPairsReported) {
  // 2 = 8 - 6 and 2 = 6 - 4 both hold.
  const auto grid = MakeNumeric({{"2", "8", "6", "4"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDifference, 0.0, 10);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kDifference)));
  EXPECT_TRUE(Contains(found, Agg(0, 0, {2, 3}, AggregationFunction::kDifference)));
}

TEST(Window, MirroredDifferenceCandidatesSuppressed) {
  // Whenever A = B - C holds, so does C = B - A; both canonicalize to the
  // same sum B = A + C. Only the first in scan order may be emitted: here
  // 2 = 8 - 6 suppresses its mirror 6 = 8 - 2, and 2 = 6 - 4 suppresses
  // 4 = 6 - 2. The total count is pinned so a regression that re-emits
  // mirrors (or over-suppresses) fails loudly.
  const auto grid = MakeNumeric({{"2", "8", "6", "4"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDifference, 0.0, 10);
  EXPECT_FALSE(Contains(found, Agg(0, 2, {1, 0}, AggregationFunction::kDifference)));
  EXPECT_FALSE(Contains(found, Agg(0, 3, {2, 0}, AggregationFunction::kDifference)));
  EXPECT_EQ(found.size(), 2u);

  // The naive reference applies the same suppression.
  const auto naive = DetectWindowPairwiseNaive(
      grid, AllActive(grid), 0, AggregationFunction::kDifference, 0.0, 10);
  EXPECT_EQ(naive.size(), 2u);
}

TEST(Window, DistinctDivisionPairsNotSuppressed) {
  // Division is its own canonical form, so suppression never folds distinct
  // division candidates together: 0.5 = 2/4 and 4 = 2/0.5 both stay.
  const auto grid = MakeNumeric({{"0.5", "2", "4"}});
  const auto found = DetectWindowPairwise(grid, AllActive(grid), 0,
                                          AggregationFunction::kDivision, 0.0, 10);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 2}, AggregationFunction::kDivision)));
  EXPECT_TRUE(Contains(found, Agg(0, 2, {1, 0}, AggregationFunction::kDivision)));
  EXPECT_EQ(found.size(), 2u);
}

}  // namespace
}  // namespace aggrecol::core
