// Enforces the config's promise that detection results are bit-identical for
// any thread count: the full pipeline runs over a generated corpus at
// threads = 1, 2, 8 and every per-stage result vector — contents AND order —
// must match the sequential run exactly.
#include <vector>

#include "core/aggrecol.h"
#include "datagen/corpus.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace aggrecol {
namespace {

const std::vector<eval::AnnotatedFile>& Corpus() {
  static const auto* const kFiles =
      new std::vector<eval::AnnotatedFile>(datagen::GenerateSmallCorpus(30, 1234));
  return *kFiles;
}

std::vector<core::DetectionResult> RunAll(const core::AggreColConfig& config) {
  const core::AggreCol detector(config);
  std::vector<core::DetectionResult> results;
  results.reserve(Corpus().size());
  for (const auto& file : Corpus()) results.push_back(detector.Detect(file.grid));
  return results;
}

void ExpectIdentical(const std::vector<core::DetectionResult>& baseline,
                     const std::vector<core::DetectionResult>& candidate,
                     const char* label) {
  ASSERT_EQ(baseline.size(), candidate.size());
  for (size_t f = 0; f < baseline.size(); ++f) {
    const auto& name = Corpus()[f].name;
    EXPECT_EQ(baseline[f].aggregations, candidate[f].aggregations)
        << label << ": final aggregations diverged on " << name;
    EXPECT_EQ(baseline[f].individual_stage, candidate[f].individual_stage)
        << label << ": stage-1 snapshot diverged on " << name;
    EXPECT_EQ(baseline[f].collective_stage, candidate[f].collective_stage)
        << label << ": stage-2 snapshot diverged on " << name;
    EXPECT_EQ(baseline[f].composites, candidate[f].composites)
        << label << ": composites diverged on " << name;
    EXPECT_EQ(baseline[f].format, candidate[f].format)
        << label << ": elected format diverged on " << name;
  }
}

TEST(Determinism, BitIdenticalAcrossThreadCounts) {
  core::AggreColConfig config;
  const auto baseline = RunAll(config);

  for (int threads : {2, 8}) {
    core::AggreColConfig threaded = config;
    threaded.threads = threads;
    ExpectIdentical(baseline, RunAll(threaded),
                    threads == 2 ? "threads=2" : "threads=8");
  }
}

TEST(Determinism, BitIdenticalWithInjectedSharedPool) {
  const auto baseline = RunAll(core::AggreColConfig{});

  util::ThreadPool pool(4);
  core::AggreColConfig injected;
  injected.pool = &pool;
  ExpectIdentical(baseline, RunAll(injected), "injected pool");
}

TEST(Determinism, CounterTotalsIdenticalAcrossThreadCounts) {
  // Counters are additive over work items, and the pipeline distributes the
  // same work whatever the thread count — so every counter (including the
  // per-rule prune accounting) must total identically at threads = 1, 2, 8.
  // Gauges and histograms are timing-dependent and deliberately not compared.
  if (!obs::CompiledIn()) GTEST_SKIP() << "built with AGGRECOL_OBS=OFF";

  auto counters_at = [](int threads) {
    obs::ScopedMetrics scoped;
    core::AggreColConfig config;
    config.threads = threads;
    RunAll(config);
    return obs::Registry::Instance().Snapshot().counters;
  };

  const auto baseline = counters_at(1);
  EXPECT_GT(baseline.size(), 0u);
  ASSERT_GT(obs::Registry::Instance().Snapshot().counter("prune.runs"), 0u);
  for (int threads : {2, 8}) {
    const auto threaded = counters_at(threads);
    EXPECT_EQ(baseline, threaded)
        << "counter totals diverged at threads=" << threads;
  }
}

TEST(Determinism, BitIdenticalWithCompositesAndSplitTables) {
  // The optional extensions ride the same pool; they must stay deterministic
  // too.
  core::AggreColConfig config;
  config.detect_composites = true;
  config.split_tables = true;
  const auto baseline = RunAll(config);

  core::AggreColConfig threaded = config;
  threaded.threads = 8;
  ExpectIdentical(baseline, RunAll(threaded), "extensions, threads=8");
}

}  // namespace
}  // namespace aggrecol
