#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/sinks.h"
#include "obs/trace.h"

namespace aggrecol::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter counter("test");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(Counter, ShardedAddsSumCorrectlyUnderContention) {
  Counter counter("contended");
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
}

TEST(Gauge, SetAddAndRecordMax) {
  Gauge gauge("g");
  gauge.Set(5);
  EXPECT_EQ(gauge.Value(), 5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.RecordMax(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.RecordMax(7);  // lower than current: no change
  EXPECT_EQ(gauge.Value(), 10);
}

TEST(Histogram, BucketBoundariesUseLeSemantics) {
  // Buckets: (-inf, 1], (1, 10], (10, 100], (100, +inf).
  Histogram histogram("h", {1.0, 10.0, 100.0});
  histogram.Record(0.5);    // -> bucket 0
  histogram.Record(1.0);    // exact boundary -> bucket 0 ("le" = <=)
  histogram.Record(1.0001); // -> bucket 1
  histogram.Record(10.0);   // exact boundary -> bucket 1
  histogram.Record(99.9);   // -> bucket 2
  histogram.Record(100.0);  // exact boundary -> bucket 2
  histogram.Record(100.1);  // -> overflow bucket
  histogram.Record(1e9);    // -> overflow bucket

  const std::vector<uint64_t> buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(histogram.Count(), 8u);
  EXPECT_DOUBLE_EQ(histogram.Sum(),
                   0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 100.1 + 1e9);
}

TEST(Histogram, SortsAndDeduplicatesBoundaries) {
  Histogram histogram("h", {10.0, 1.0, 10.0});
  ASSERT_EQ(histogram.boundaries(), (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(histogram.BucketCounts().size(), 3u);
}

TEST(Histogram, CountsCorrectlyUnderContention) {
  Histogram histogram("contended", {0.5});
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        histogram.Record(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(),
            static_cast<uint64_t>(kThreads) * kRecordsPerThread);
  const auto buckets = histogram.BucketCounts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], static_cast<uint64_t>(kThreads) * kRecordsPerThread / 2);
  EXPECT_EQ(buckets[1], static_cast<uint64_t>(kThreads) * kRecordsPerThread / 2);
}

TEST(Registry, MetricsSurviveResetAndSnapshotSeesZeroes) {
  ScopedMetrics scoped;
  Counter& counter = Registry::Instance().GetCounter("registry.reset");
  counter.Add(7);
  EXPECT_EQ(Registry::Instance().Snapshot().counter("registry.reset"), 7u);
  Registry::Instance().Reset();
  // Same object, zeroed in place.
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(Registry::Instance().Snapshot().counter("registry.reset"), 0u);
}

TEST(Registry, HelpersNoOpWhenDisabled) {
  {
    ScopedMetrics scoped;  // reset so leftovers don't leak into this test
  }
  Registry::set_enabled(false);
  Count("disabled.counter", 5);
  GaugeSet("disabled.gauge", 5);
  Observe("disabled.histogram", 5.0);
  const MetricsSnapshot snapshot = Registry::Instance().Snapshot();
  EXPECT_EQ(snapshot.counter("disabled.counter"), 0u);
  for (const auto& [name, value] : snapshot.gauges) {
    EXPECT_NE(name, "disabled.gauge");
  }
  for (const auto& histogram : snapshot.histograms) {
    EXPECT_NE(histogram.name, "disabled.histogram");
  }
}

TEST(Registry, HelpersRecordWhenEnabled) {
  if (!CompiledIn()) GTEST_SKIP() << "built with AGGRECOL_OBS=OFF";
  ScopedMetrics scoped;
  Count("enabled.counter", 5);
  Count("enabled.counter");
  GaugeMax("enabled.gauge", 3);
  GaugeMax("enabled.gauge", 9);
  GaugeMax("enabled.gauge", 6);
  Observe("enabled.histogram", 0.5);
  const MetricsSnapshot snapshot = Registry::Instance().Snapshot();
  EXPECT_EQ(snapshot.counter("enabled.counter"), 6u);
  bool saw_gauge = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "enabled.gauge") {
      saw_gauge = true;
      EXPECT_EQ(value, 9);
    }
  }
  EXPECT_TRUE(saw_gauge);
}

TEST(ScopedSpan, RecordsElapsedSecondsIntoSpanHistogram) {
  if (!CompiledIn()) GTEST_SKIP() << "built with AGGRECOL_OBS=OFF";
  ScopedMetrics scoped;
  {
    ScopedSpan span("unit");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const MetricsSnapshot snapshot = Registry::Instance().Snapshot();
  bool found = false;
  for (const auto& histogram : snapshot.histograms) {
    if (histogram.name == "span.unit") {
      found = true;
      EXPECT_EQ(histogram.count, 1u);
      EXPECT_GE(histogram.sum, 0.002);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Sinks, JsonRoundTripIsExact) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"a.count", 0}, {"b.count", 18446744073709551615ull}};
  snapshot.gauges = {{"depth", -7}, {"max", 42}};
  HistogramSnapshot histogram;
  histogram.name = "span.detect";
  histogram.count = 3;
  histogram.sum = 0.1 + 0.2 + 1e-9;  // exercise full double precision
  histogram.boundaries = {1e-6, 0.001, 1.0};
  histogram.buckets = {0, 2, 1, 0};
  snapshot.histograms = {histogram};

  const std::string json = MetricsJson(snapshot);
  const auto parsed = ParseMetricsJson(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, snapshot);
}

TEST(Sinks, JsonRoundTripOfLiveRegistry) {
  if (!CompiledIn()) GTEST_SKIP() << "built with AGGRECOL_OBS=OFF";
  ScopedMetrics scoped;
  Count("live.files", 12);
  GaugeSet("live.window", 4);
  Observe("live.seconds", 0.0123);
  const MetricsSnapshot snapshot = Registry::Instance().Snapshot();
  const auto parsed = ParseMetricsJson(MetricsJson(snapshot));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, snapshot);
}

TEST(Sinks, ParseRejectsMalformedInput) {
  EXPECT_FALSE(ParseMetricsJson("").has_value());
  EXPECT_FALSE(ParseMetricsJson("{").has_value());
  EXPECT_FALSE(ParseMetricsJson("[]").has_value());
  EXPECT_FALSE(
      ParseMetricsJson(R"({"schema": "something.else.v9"})").has_value());
  // Bucket count must be boundary count + 1.
  EXPECT_FALSE(ParseMetricsJson(R"({
    "schema": "aggrecol.metrics.v1", "obs_compiled": true,
    "counters": {}, "gauges": {},
    "histograms": [{"name": "h", "count": 0, "sum": 0,
                    "buckets": [{"le": 1, "count": 0}, {"le": 2, "count": 0},
                                {"le": null, "count": 0}, {"le": null, "count": 0}]}]
  })").has_value());
}

TEST(Sinks, TableRendersWithoutCrashing) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"files", 3}};
  snapshot.gauges = {{"window", 4}};
  HistogramSnapshot histogram;
  histogram.name = "span.batch.run";
  histogram.count = 1;
  histogram.sum = 0.5;
  histogram.boundaries = {1.0};
  histogram.buckets = {1, 0};
  snapshot.histograms = {histogram};
  std::ostringstream os;
  PrintMetricsTable(snapshot, os);
  EXPECT_NE(os.str().find("files"), std::string::npos);
  EXPECT_NE(os.str().find("span.batch.run"), std::string::npos);
}

}  // namespace
}  // namespace aggrecol::obs
