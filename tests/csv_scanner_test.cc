// Alignment and boundary battery for the structural scanner.
//
// Every SWAR/SIMD kernel must produce exactly the offsets the scalar
// lookup-table scan produces — the parser's bit-identity to the reference
// state machine rests on that equality. The dangerous inputs are the ones
// where a structural byte straddles a kernel's word or vector boundary
// (8 bytes for SWAR, 16 for SSE2, 32 for AVX2) or lands in the scalar tail
// after the last full vector, so this battery sweeps every size residue and
// every byte position rather than sampling. The whole file runs under the
// ASan/UBSan CI job, so an out-of-bounds word load at a buffer edge is a
// test failure, not a latent bug.
#include <cstdint>
#include <string>
#include <vector>

#include "csv/scanner.h"
#include "gtest/gtest.h"

namespace aggrecol::csv {
namespace {

StructuralSet RfcSet() {
  StructuralSet set;
  set.Add(',');
  set.Add('"');
  set.Add('\r');
  set.Add('\n');
  return set;
}

StructuralSet EscapeSet() {
  StructuralSet set = RfcSet();
  set.Add('\\');
  return set;
}

std::vector<uint32_t> Scan(std::string_view text, const StructuralSet& set,
                           ScanTier tier) {
  std::vector<uint32_t> out;
  ScanStructural(text, set, tier, out);
  return out;
}

/// xorshift64 — deterministic filler so failures replay exactly.
uint64_t Next(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// Non-structural filler byte, varied so adjacent cells differ.
char Filler(uint64_t& state) {
  static constexpr char kPool[] = "abcdefghij0123456789 .-_";
  return kPool[Next(state) % (sizeof(kPool) - 1)];
}

TEST(ScanTiers, NamesAreStable) {
  EXPECT_EQ(ToString(ScanTier::kScalar), "scalar");
  EXPECT_EQ(ToString(ScanTier::kSwar), "swar");
  EXPECT_EQ(ToString(ScanTier::kSse2), "sse2");
  EXPECT_EQ(ToString(ScanTier::kAvx2), "avx2");
}

TEST(ScanTiers, ScalarAndSwarAlwaysCompiled) {
  const auto compiled = CompiledScanTiers();
  ASSERT_GE(compiled.size(), 2u);
  EXPECT_EQ(compiled[0], ScanTier::kScalar);
  EXPECT_EQ(compiled[1], ScanTier::kSwar);
}

TEST(ScanTiers, RuntimeTiersAreASubsetOfCompiled) {
  const auto compiled = CompiledScanTiers();
  for (ScanTier tier : RuntimeScanTiers()) {
    bool found = false;
    for (ScanTier c : compiled) found = found || c == tier;
    EXPECT_TRUE(found) << "runtime tier " << ToString(tier)
                       << " not in compiled set";
  }
}

TEST(ScanTiers, ActiveTierIsRunnable) {
  const auto runtime = RuntimeScanTiers();
  ASSERT_FALSE(runtime.empty());
  bool found = false;
  for (ScanTier tier : runtime) found = found || tier == ActiveScanTier();
  EXPECT_TRUE(found);
  // Active is the strongest runtime tier by enum order.
  for (ScanTier tier : runtime) {
    EXPECT_LE(static_cast<int>(tier), static_cast<int>(ActiveScanTier()));
  }
}

TEST(ScanTiers, EffectivePolicyDegradesTinyAndEscapeInputs) {
  // Tiny inputs run scalar regardless of the requested tier.
  EXPECT_EQ(EffectiveScanTier(ScanTier::kAvx2, 8, 4), ScanTier::kScalar);
  EXPECT_EQ(EffectiveScanTier(ScanTier::kSwar, 63, 4), ScanTier::kScalar);
  // A five-byte structural set (active escape) forces the scalar path.
  EXPECT_EQ(EffectiveScanTier(ScanTier::kAvx2, 1 << 20, 5), ScanTier::kScalar);
  // Normal case: request honored.
  EXPECT_EQ(EffectiveScanTier(ScanTier::kAvx2, 1 << 20, 4), ScanTier::kAvx2);
  EXPECT_EQ(EffectiveScanTier(ScanTier::kScalar, 1 << 20, 4),
            ScanTier::kScalar);
}

TEST(StructuralSet, DeduplicatesAndCaps) {
  StructuralSet set;
  set.Add(',');
  set.Add(',');
  EXPECT_EQ(set.count, 1);
  set.Add('"');
  set.Add('\r');
  set.Add('\n');
  set.Add('\\');
  EXPECT_EQ(set.count, 5);
  EXPECT_TRUE(set.Contains('\\'));
  set.Add('|');  // full: silently ignored, callers never build sets this big
  EXPECT_EQ(set.count, 5);
  EXPECT_FALSE(set.Contains('|'));
}

TEST(ScanScalar, FindsEveryTargetAndNothingElse) {
  const std::string text = "a,b\"c\rd\ne\\f,g";
  const auto hits = Scan(text, EscapeSet(), ScanTier::kScalar);
  const std::vector<uint32_t> expected = {1, 3, 5, 7, 9, 11};
  EXPECT_EQ(hits, expected);
}

TEST(ScanScalar, EmptyAndStructuralFreeInputs) {
  EXPECT_TRUE(Scan("", RfcSet(), ScanTier::kScalar).empty());
  EXPECT_TRUE(Scan("plain text no csv", RfcSet(), ScanTier::kScalar).empty());
}

// The core battery: every runtime tier against the scalar oracle, for every
// file size 0..65 (covers the empty file, sub-word, sub-vector, and
// one-past-AVX2-register sizes at every residue) and every position of a
// single structural byte within that size. Sizes 0..65 × positions 0..size
// × 4 structural bytes ≈ 9k scans per tier — fast, and exhaustive over the
// alignment space where word/vector loads can go wrong.
TEST(ScanEquivalence, EverySizeEveryPositionEveryTier) {
  const StructuralSet set = RfcSet();
  const char targets[] = {',', '"', '\r', '\n'};
  uint64_t rng = 0x5CA11AB1E5ULL;
  for (ScanTier tier : RuntimeScanTiers()) {
    if (tier == ScanTier::kScalar) continue;
    for (size_t size = 0; size <= 65; ++size) {
      std::string base(size, 'x');
      for (char& c : base) c = Filler(rng);
      // No structural bytes at all.
      EXPECT_EQ(Scan(base, set, tier), Scan(base, set, ScanTier::kScalar))
          << ToString(tier) << " size " << size;
      for (size_t pos = 0; pos < size; ++pos) {
        for (char target : targets) {
          std::string text = base;
          text[pos] = target;
          const auto scalar = Scan(text, set, ScanTier::kScalar);
          const auto tiered = Scan(text, set, tier);
          ASSERT_EQ(tiered, scalar)
              << ToString(tier) << " size " << size << " pos " << pos
              << " target 0x" << std::hex << static_cast<int>(target);
        }
      }
    }
  }
}

// Structural bytes planted to straddle every kernel boundary: the last and
// first byte of adjacent 8-byte words, 16-byte and 32-byte vectors, plus
// runs crossing those edges. One long buffer exercises all of them at once,
// in every tier.
TEST(ScanEquivalence, BoundaryStraddlingPairs) {
  const StructuralSet set = RfcSet();
  constexpr size_t kSize = 192;  // six AVX2 registers
  uint64_t rng = 0xB0DA57ULL;
  std::string text(kSize, 'x');
  for (char& c : text) c = Filler(rng);
  for (size_t boundary : {8u, 16u, 32u, 64u, 128u}) {
    for (size_t edge = boundary - 1; edge + 1 < kSize; edge += boundary) {
      text[edge] = '"';       // last byte of one word/vector
      text[edge + 1] = ',';   // first byte of the next
    }
  }
  // A CRLF crossing the first AVX2 boundary and a quote run crossing the
  // second: multi-byte structures, not just single characters.
  text[31] = '\r';
  text[32] = '\n';
  text[62] = '"';
  text[63] = '"';
  text[64] = '"';
  const auto scalar = Scan(text, set, ScanTier::kScalar);
  for (ScanTier tier : RuntimeScanTiers()) {
    EXPECT_EQ(Scan(text, set, tier), scalar) << ToString(tier);
  }
}

// The final byte is the classic over-read spot: a word or vector load
// "for the tail" must not read past the buffer, and the last byte must
// still be found. Quote and CR as final byte are the parser's own edge
// cases (unterminated quote, lone-CR terminator), so pin those bytes
// specifically at every size residue.
TEST(ScanEquivalence, FinalByteQuoteAndCrAtEveryResidue) {
  const StructuralSet set = RfcSet();
  uint64_t rng = 0xF17A1ULL;
  for (size_t size = 1; size <= 65; ++size) {
    for (char last : {'"', '\r', '\n', ','}) {
      std::string text(size, 'x');
      for (char& c : text) c = Filler(rng);
      text[size - 1] = last;
      const auto scalar = Scan(text, set, ScanTier::kScalar);
      ASSERT_FALSE(scalar.empty());
      EXPECT_EQ(scalar.back(), size - 1);
      for (ScanTier tier : RuntimeScanTiers()) {
        ASSERT_EQ(Scan(text, set, tier), scalar)
            << ToString(tier) << " size " << size << " last 0x" << std::hex
            << static_cast<int>(last);
      }
    }
  }
}

// Five-target (escape-active) sets must agree across tiers too, even though
// the parser's EffectiveScanTier policy routes them to scalar in practice —
// the kernels themselves must stay correct for any set they are handed.
TEST(ScanEquivalence, FiveByteEscapeSets) {
  const StructuralSet set = EscapeSet();
  uint64_t rng = 0xE5CA9EULL;
  for (size_t size : {7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 100u}) {
    std::string text(size, 'x');
    for (char& c : text) c = Filler(rng);
    if (size > 2) {
      text[size / 2] = '\\';
      text[size - 1] = '"';
    }
    const auto scalar = Scan(text, set, ScanTier::kScalar);
    for (ScanTier tier : RuntimeScanTiers()) {
      EXPECT_EQ(Scan(text, set, tier), scalar)
          << ToString(tier) << " size " << size;
    }
  }
}

// Dense structural content (every byte a target) and high-bit bytes (0x80+,
// where signed-char and SWAR high-bit arithmetic can slip) across sizes.
TEST(ScanEquivalence, DenseAndHighBitContent) {
  const StructuralSet set = RfcSet();
  for (size_t size = 1; size <= 40; ++size) {
    std::string dense(size, ',');
    for (size_t i = 1; i < size; i += 2) dense[i] = '"';
    std::string high(size, '\0');
    for (size_t i = 0; i < size; ++i) {
      high[i] = static_cast<char>(0x80 + (i * 7) % 0x80);
    }
    high[size / 2] = ',';
    for (const std::string& text : {dense, high}) {
      const auto scalar = Scan(text, set, ScanTier::kScalar);
      for (ScanTier tier : RuntimeScanTiers()) {
        ASSERT_EQ(Scan(text, set, tier), scalar)
            << ToString(tier) << " size " << size;
      }
    }
  }
}

// 0x00 must never be reported unless it is a target; the SWAR zero-byte
// detector works by *creating* zero bytes, so embedded NULs are its
// adversarial input.
TEST(ScanEquivalence, EmbeddedNulBytes) {
  const StructuralSet set = RfcSet();
  for (size_t size : {1u, 7u, 8u, 9u, 16u, 33u, 64u}) {
    std::string text(size, '\0');
    if (size > 1) text[size / 2] = ',';
    const auto scalar = Scan(text, set, ScanTier::kScalar);
    for (ScanTier tier : RuntimeScanTiers()) {
      EXPECT_EQ(Scan(text, set, tier), scalar)
          << ToString(tier) << " size " << size;
    }
  }
}

// Offsets are ascending and unique in every tier — the parser's token walk
// assumes strictly increasing positions.
TEST(ScanEquivalence, OffsetsStrictlyAscending) {
  uint64_t rng = 0xA5CE2DULL;
  std::string text(4096, 'x');
  for (char& c : text) {
    const uint64_t roll = Next(rng);
    c = roll % 5 == 0 ? ',' : roll % 7 == 0 ? '"' : Filler(rng);
  }
  for (ScanTier tier : RuntimeScanTiers()) {
    const auto hits = Scan(text, RfcSet(), tier);
    for (size_t i = 1; i < hits.size(); ++i) {
      ASSERT_LT(hits[i - 1], hits[i]) << ToString(tier);
    }
  }
}

}  // namespace
}  // namespace aggrecol::csv
