#ifndef AGGRECOL_TESTS_TEST_SUPPORT_H_
#define AGGRECOL_TESTS_TEST_SUPPORT_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "csv/grid.h"
#include "numfmt/numeric_grid.h"

namespace aggrecol::testing {

/// Builds a Grid from row literals.
inline csv::Grid MakeGrid(std::initializer_list<std::vector<std::string>> rows) {
  return csv::Grid(std::vector<std::vector<std::string>>(rows));
}

/// Builds a normalized NumericGrid from row literals (comma/dot format).
inline numfmt::NumericGrid MakeNumeric(
    std::initializer_list<std::vector<std::string>> rows) {
  return numfmt::NumericGrid::FromGrid(MakeGrid(rows),
                                       numfmt::NumberFormat::kCommaDot);
}

/// An all-active column mask for `grid`.
inline std::vector<bool> AllActive(const numfmt::NumericGrid& grid) {
  return std::vector<bool>(grid.columns(), true);
}

/// Shorthand aggregation builder (row-wise unless axis given).
inline core::Aggregation Agg(int line, int aggregate, std::vector<int> range,
                             core::AggregationFunction function,
                             core::Axis axis = core::Axis::kRow, double error = 0.0) {
  core::Aggregation aggregation;
  aggregation.axis = axis;
  aggregation.line = line;
  aggregation.aggregate = aggregate;
  aggregation.range = std::move(range);
  aggregation.function = function;
  aggregation.error = error;
  return aggregation;
}

/// True if `aggregations` contains an aggregation with the given identity
/// (canonicalized commutative range order is NOT applied; exact match).
inline bool Contains(const std::vector<core::Aggregation>& aggregations,
                     const core::Aggregation& wanted) {
  for (const auto& aggregation : aggregations) {
    if (aggregation == wanted) return true;
  }
  return false;
}

/// True if `aggregations` contains `wanted` up to canonicalization
/// (difference folded into sum, commutative ranges sorted) — the equivalence
/// the evaluation uses (Sec. 4.3.2).
inline bool ContainsCanonical(const std::vector<core::Aggregation>& aggregations,
                              const core::Aggregation& wanted) {
  const core::Aggregation canonical_wanted = core::Canonicalize(wanted);
  for (const auto& aggregation : aggregations) {
    if (core::Canonicalize(aggregation) == canonical_wanted) return true;
  }
  return false;
}

/// The Figure 5 table of the paper: three sum aggregations (one cumulative)
/// and one division. Column 0 is the year label; columns per the paper:
///   a1: C1 = C2+...+C7   a2: C8 = C9+C10   a3: C12 = C1+C8+C11
///   a4: C13 = C9/C8
inline csv::Grid Figure5Grid() {
  return MakeGrid({
      {"Year", "Europe", "Bulgaria", "France", "Germany", "Poland", "Portugal",
       "Romania", "Africa", "Kenya", "Ethiopia", "Chile", "Total pop. change",
       "Kenya in Africa"},
      {"2013", "3703", "215", "930", "1278", "1216", "62", "2", "64", "58", "6",
       "128", "3895", "0.90625"},
      {"2014", "4038", "546", "959", "1145", "1388", "-243", "243", "22", "6", "16",
       "78", "4138", "0.27272727"},
      {"2015", "3900", "307", "736", "1573", "1263", "90", "-69", "23", "6", "17",
       "123", "4046", "0.26086957"},
      {"2016", "4830", "279", "1176", "1683", "135", "1548", "9", "19", "10", "9",
       "197", "5046", "0.52631579"},
      {"2017", "4944", "378", "1669", "2897", "-305", "228", "77", "22", "8", "14",
       "", "4966", "0.36363636"},
      {"2018", "5791", "900", "2583", "1148", "1127", "21", "13", "34", "21", "13",
       "", "5825", "0.61764706"},
      {"2019", "8266", "364", "4155", "3550", "164", "22", "11", "33", "14", "19",
       "", "8299", "0.42424242"},
  });
}

}  // namespace aggrecol::testing

#endif  // AGGRECOL_TESTS_TEST_SUPPORT_H_
