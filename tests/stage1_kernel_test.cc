// Differential coverage for the stage-1 hot-path kernels: the prefix-sum
// adjacency scan and the LineIndex-compacted window scan must be
// *bit-identical* to the retained naive reference scans — same aggregation
// sets in the same order, with bitwise-equal observed error levels — on both
// axes, for all five functions, across every Fig. 7 error level. Also unit
// coverage for AxisView (the zero-copy transpose) and LineIndex itself.
#include <cmath>
#include <vector>

#include "core/adjacency_strategy.h"
#include "core/line_index.h"
#include "core/window_strategy.h"
#include "datagen/corpus.h"
#include "gtest/gtest.h"
#include "numfmt/axis_view.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Figure5Grid;
using aggrecol::testing::MakeNumeric;

// The Fig. 7 sweep, as in bench/fig7_error_levels.
const std::vector<double>& Fig7Levels() {
  static const std::vector<double> levels = {0.0,  1e-6, 1e-4, 1e-3,
                                             0.01, 0.03, 0.05, 0.1};
  return levels;
}

// Asserts the two scans produced the same aggregations in the same order,
// with bitwise-identical error fields (operator== ignores the error, so it is
// checked separately; exact double equality is intentional — the kernel
// contract is bit-identity, not approximate agreement).
void ExpectIdenticalScan(const std::vector<Aggregation>& kernel,
                         const std::vector<Aggregation>& naive,
                         const std::string& context) {
  ASSERT_EQ(kernel.size(), naive.size()) << context;
  for (size_t i = 0; i < kernel.size(); ++i) {
    EXPECT_EQ(kernel[i], naive[i]) << context << " at " << i << ": "
                                   << ToString(kernel[i]) << " vs "
                                   << ToString(naive[i]);
    EXPECT_EQ(kernel[i].error, naive[i].error)
        << context << " error mismatch at " << i << ": " << ToString(kernel[i]);
  }
}

// Runs both implementations of both strategies over every line of both axis
// views of `grid`, across all five functions and all Fig. 7 error levels,
// with the given active mask (or all-active when empty).
void ExpectKernelMatchesNaive(const numfmt::NumericGrid& grid,
                              const std::string& name,
                              std::vector<bool> active = {}) {
  const numfmt::AxisView views[] = {numfmt::AxisView::Rows(grid),
                                    numfmt::AxisView::Columns(grid)};
  for (const auto& view : views) {
    std::vector<bool> mask = active;
    if (static_cast<int>(mask.size()) != view.columns()) {
      mask.assign(view.columns(), true);
    }
    for (double level : Fig7Levels()) {
      for (AggregationFunction function : kAllFunctions) {
        const bool commutative = TraitsOf(function).commutative;
        for (int line = 0; line < view.rows(); ++line) {
          const std::string context =
              name + " axis=" + (view.transposed() ? "col" : "row") +
              " fn=" + ToString(function) + " level=" + std::to_string(level) +
              " line=" + std::to_string(line);
          if (commutative) {
            ExpectIdenticalScan(
                DetectAdjacentCommutative(view, mask, line, function, level),
                DetectAdjacentCommutativeNaive(view, mask, line, function, level),
                context);
          } else {
            ExpectIdenticalScan(
                DetectWindowPairwise(view, mask, line, function, level, 10),
                DetectWindowPairwiseNaive(view, mask, line, function, level, 10),
                context);
          }
        }
      }
    }
  }
}

TEST(Stage1Kernel, MatchesNaiveOnFigure5) {
  ExpectKernelMatchesNaive(
      numfmt::NumericGrid::FromGrid(Figure5Grid(), numfmt::NumberFormat::kCommaDot),
      "figure5");
}

TEST(Stage1Kernel, MatchesNaiveWithInactiveColumns) {
  const auto grid =
      numfmt::NumericGrid::FromGrid(Figure5Grid(), numfmt::NumberFormat::kCommaDot);
  std::vector<bool> active(static_cast<size_t>(grid.columns()), true);
  for (size_t j = 0; j < active.size(); j += 3) active[j] = false;
  // Row axis only: the mask is in row-view coordinates.
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
  for (double level : Fig7Levels()) {
    for (AggregationFunction function : kAllFunctions) {
      for (int line = 0; line < view.rows(); ++line) {
        if (TraitsOf(function).commutative) {
          ExpectIdenticalScan(
              DetectAdjacentCommutative(view, active, line, function, level),
              DetectAdjacentCommutativeNaive(view, active, line, function, level),
              "masked");
        } else {
          ExpectIdenticalScan(
              DetectWindowPairwise(view, active, line, function, level, 10),
              DetectWindowPairwiseNaive(view, active, line, function, level, 10),
              "masked");
        }
      }
    }
  }
}

TEST(Stage1Kernel, MatchesNaiveOnGeneratedCorpus) {
  const auto corpus = datagen::GenerateSmallCorpus(200, 0xA66);
  ASSERT_EQ(corpus.size(), 200u);
  for (const auto& file : corpus) {
    ExpectKernelMatchesNaive(
        numfmt::NumericGrid::FromGrid(file.grid, file.format), file.name);
  }
}

TEST(Stage1Kernel, PrecisionFallbackMatchesNaiveUnderCancellation) {
  // 2^53 + 1 - 2^53 destroys the plain prefix sums (the +1 is entirely lost
  // at 2^53 magnitude), so the prefix screen cannot decide and must fall back
  // to the compensated walk, which recovers the range sum exactly. The
  // detection then agrees bitwise with the naive Kahan reference.
  std::vector<std::string> row = {"998", "9007199254740992", "1",
                                  "-9007199254740992"};
  for (int i = 0; i < 997; ++i) row.push_back("1");
  const auto grid = MakeNumeric({row});
  const std::vector<bool> active(static_cast<size_t>(grid.columns()), true);

  const auto kernel = DetectAdjacentCommutative(grid, active, 0,
                                                AggregationFunction::kSum, 0.0);
  const auto naive = DetectAdjacentCommutativeNaive(
      grid, active, 0, AggregationFunction::kSum, 0.0);
  ExpectIdenticalScan(kernel, naive, "cancellation");

  // And the aggregation over the full 1000-column range is actually found.
  std::vector<int> range(1000);
  for (int i = 0; i < 1000; ++i) range[i] = i + 1;
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel, aggrecol::testing::Agg(0, 0, range, AggregationFunction::kSum)));
}

TEST(AxisView, RowViewMatchesGrid) {
  const auto grid = MakeNumeric({{"1", "x", "3"}, {"", "5", "abc"}});
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
  EXPECT_FALSE(view.transposed());
  ASSERT_EQ(view.rows(), grid.rows());
  ASSERT_EQ(view.columns(), grid.columns());
  for (int i = 0; i < grid.rows(); ++i) {
    for (int j = 0; j < grid.columns(); ++j) {
      EXPECT_EQ(view.kind(i, j), grid.kind(i, j));
      EXPECT_EQ(view.value(i, j), grid.value(i, j));
    }
  }
  EXPECT_EQ(view.format(), grid.format());
}

TEST(AxisView, ColumnViewMatchesTransposedCopy) {
  const auto grid = MakeNumeric({{"1", "x", "3"}, {"", "5", "abc"}});
  const numfmt::NumericGrid transposed = grid.Transposed();
  const numfmt::AxisView view = numfmt::AxisView::Columns(grid);
  EXPECT_TRUE(view.transposed());
  ASSERT_EQ(view.rows(), transposed.rows());
  ASSERT_EQ(view.columns(), transposed.columns());
  for (int i = 0; i < transposed.rows(); ++i) {
    for (int j = 0; j < transposed.columns(); ++j) {
      EXPECT_EQ(view.kind(i, j), transposed.kind(i, j));
      EXPECT_EQ(view.value(i, j), transposed.value(i, j));
      EXPECT_EQ(view.IsNumeric(i, j), transposed.IsNumeric(i, j));
      EXPECT_EQ(view.IsRangeUsable(i, j), transposed.IsRangeUsable(i, j));
    }
    EXPECT_EQ(view.NumericCountInRow(i), transposed.NumericCountInRow(i));
  }
  for (int j = 0; j < transposed.columns(); ++j) {
    EXPECT_EQ(view.NumericCountInColumn(j), transposed.NumericCountInColumn(j));
  }
}

TEST(AxisView, ImplicitConversionIsRowView) {
  const auto grid = MakeNumeric({{"1", "2"}, {"3", "4"}});
  const numfmt::AxisView view = grid;  // implicit
  EXPECT_FALSE(view.transposed());
  EXPECT_EQ(view.value(1, 0), 3.0);
}

TEST(LineIndex, CompactsUsableCellsWithPrefixSums) {
  // "x" is a zero marker (usable, value 0), "abc" is text (skipped), and
  // column 4 is masked out.
  const auto grid = MakeNumeric({{"10", "x", "abc", "20", "30", "40"}});
  std::vector<bool> active(6, true);
  active[4] = false;
  LineIndex index;
  index.Build(grid, active, 0);
  ASSERT_EQ(index.size(), 4);
  EXPECT_EQ(index.col(0), 0);
  EXPECT_EQ(index.col(1), 1);
  EXPECT_EQ(index.col(2), 3);
  EXPECT_EQ(index.col(3), 5);
  EXPECT_TRUE(index.is_numeric(0));
  EXPECT_FALSE(index.is_numeric(1));  // zero marker: usable, not an aggregate
  EXPECT_DOUBLE_EQ(index.value(3), 40.0);
  EXPECT_DOUBLE_EQ(index.PrefixSum(0, 4), 70.0);
  EXPECT_DOUBLE_EQ(index.PrefixSum(1, 3), 20.0);
  EXPECT_DOUBLE_EQ(index.PrefixSum(2, 2), 0.0);
}

TEST(LineIndex, CompensatedSumHonorsWalkOrder) {
  const auto grid = MakeNumeric({{"1.5", "2.25", "3.125", "4"}});
  const std::vector<bool> active(4, true);
  LineIndex index;
  index.Build(grid, active, 0);
  KahanAccumulator forward;
  for (double v : {1.5, 2.25, 3.125, 4.0}) forward.Add(v);
  EXPECT_EQ(index.CompensatedSum(0, 4, false), forward.Total());
  KahanAccumulator backward;
  for (double v : {4.0, 3.125, 2.25, 1.5}) backward.Add(v);
  EXPECT_EQ(index.CompensatedSum(0, 4, true), backward.Total());
}

TEST(LineIndex, SumErrorBoundCoversPrefixDrift) {
  // The bound must dominate the observed |prefix subtraction - compensated
  // sum| discrepancy, including under heavy cancellation.
  std::vector<std::string> row = {"9007199254740992", "1", "-9007199254740992",
                                  "0.1", "0.2", "12345.6789"};
  const auto grid = MakeNumeric({row});
  const std::vector<bool> active(row.size(), true);
  LineIndex index;
  index.Build(grid, active, 0);
  for (int begin = 0; begin < index.size(); ++begin) {
    for (int end = begin + 1; end <= index.size(); ++end) {
      const double drift = std::fabs(index.PrefixSum(begin, end) -
                                     index.CompensatedSum(begin, end, false));
      EXPECT_LE(drift, index.SumErrorBound(end))
          << "span [" << begin << ", " << end << ")";
    }
  }
}

}  // namespace
}  // namespace aggrecol::core
