// Differential coverage for the stage-1 hot-path kernels: the prefix-sum
// adjacency scan and the LineIndex-compacted window scan must be
// *bit-identical* to the retained naive reference scans — same aggregation
// sets in the same order, with bitwise-equal observed error levels — on both
// axes, for all five functions, across every Fig. 7 error level. Also unit
// coverage for AxisView (the zero-copy transpose) and LineIndex itself.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/adjacency_strategy.h"
#include "core/collective_detector.h"
#include "core/extension.h"
#include "core/line_index.h"
#include "core/pruning.h"
#include "core/window_strategy.h"
#include "datagen/corpus.h"
#include "gtest/gtest.h"
#include "numfmt/axis_view.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Figure5Grid;
using aggrecol::testing::MakeNumeric;

// Scientific notation is not a recognized number shape (ParseShape treats the
// exponent marker as text), so denormal cells must be spelled out as plain
// decimals. 400 fraction digits leave the rounding error at ~1e-401, far
// below the denormal spacing of ~5e-324, so the literal round-trips to the
// exact double it was printed from (via ParseNumber's long-fraction heap
// fallback).
std::string DecimalLiteral(double value) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), "%.400f", value);
  return std::string(buffer);
}

// The Fig. 7 sweep, as in bench/fig7_error_levels.
const std::vector<double>& Fig7Levels() {
  static const std::vector<double> levels = {0.0,  1e-6, 1e-4, 1e-3,
                                             0.01, 0.03, 0.05, 0.1};
  return levels;
}

// Asserts the two scans produced the same aggregations in the same order,
// with bitwise-identical error fields (operator== ignores the error, so it is
// checked separately; exact double equality is intentional — the kernel
// contract is bit-identity, not approximate agreement).
void ExpectIdenticalScan(const std::vector<Aggregation>& kernel,
                         const std::vector<Aggregation>& naive,
                         const std::string& context) {
  ASSERT_EQ(kernel.size(), naive.size()) << context;
  for (size_t i = 0; i < kernel.size(); ++i) {
    EXPECT_EQ(kernel[i], naive[i]) << context << " at " << i << ": "
                                   << ToString(kernel[i]) << " vs "
                                   << ToString(naive[i]);
    EXPECT_EQ(kernel[i].error, naive[i].error)
        << context << " error mismatch at " << i << ": " << ToString(kernel[i]);
  }
}

// Runs both implementations of both strategies over every line of both axis
// views of `grid`, across all five functions and all Fig. 7 error levels,
// with the given active mask (or all-active when empty).
void ExpectKernelMatchesNaive(const numfmt::NumericGrid& grid,
                              const std::string& name,
                              std::vector<bool> active = {}) {
  const numfmt::AxisView views[] = {numfmt::AxisView::Rows(grid),
                                    numfmt::AxisView::Columns(grid)};
  for (const auto& view : views) {
    std::vector<bool> mask = active;
    if (static_cast<int>(mask.size()) != view.columns()) {
      mask.assign(view.columns(), true);
    }
    for (double level : Fig7Levels()) {
      for (AggregationFunction function : kAllFunctions) {
        const bool commutative = TraitsOf(function).commutative;
        for (int line = 0; line < view.rows(); ++line) {
          const std::string context =
              name + " axis=" + (view.transposed() ? "col" : "row") +
              " fn=" + ToString(function) + " level=" + std::to_string(level) +
              " line=" + std::to_string(line);
          if (commutative) {
            ExpectIdenticalScan(
                DetectAdjacentCommutative(view, mask, line, function, level),
                DetectAdjacentCommutativeNaive(view, mask, line, function, level),
                context);
          } else {
            ExpectIdenticalScan(
                DetectWindowPairwise(view, mask, line, function, level, 10),
                DetectWindowPairwiseNaive(view, mask, line, function, level, 10),
                context);
          }
        }
      }
    }
  }
}

TEST(Stage1Kernel, MatchesNaiveOnFigure5) {
  ExpectKernelMatchesNaive(
      numfmt::NumericGrid::FromGrid(Figure5Grid(), numfmt::NumberFormat::kCommaDot),
      "figure5");
}

TEST(Stage1Kernel, MatchesNaiveWithInactiveColumns) {
  const auto grid =
      numfmt::NumericGrid::FromGrid(Figure5Grid(), numfmt::NumberFormat::kCommaDot);
  std::vector<bool> active(static_cast<size_t>(grid.columns()), true);
  for (size_t j = 0; j < active.size(); j += 3) active[j] = false;
  // Row axis only: the mask is in row-view coordinates.
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
  for (double level : Fig7Levels()) {
    for (AggregationFunction function : kAllFunctions) {
      for (int line = 0; line < view.rows(); ++line) {
        if (TraitsOf(function).commutative) {
          ExpectIdenticalScan(
              DetectAdjacentCommutative(view, active, line, function, level),
              DetectAdjacentCommutativeNaive(view, active, line, function, level),
              "masked");
        } else {
          ExpectIdenticalScan(
              DetectWindowPairwise(view, active, line, function, level, 10),
              DetectWindowPairwiseNaive(view, active, line, function, level, 10),
              "masked");
        }
      }
    }
  }
}

TEST(Stage1Kernel, MatchesNaiveOnGeneratedCorpus) {
  const auto corpus = datagen::GenerateSmallCorpus(200, 0xA66);
  ASSERT_EQ(corpus.size(), 200u);
  for (const auto& file : corpus) {
    ExpectKernelMatchesNaive(
        numfmt::NumericGrid::FromGrid(file.grid, file.format), file.name);
  }
}

TEST(Stage1Kernel, PrecisionFallbackMatchesNaiveUnderCancellation) {
  // 2^53 + 1 - 2^53 destroys the plain prefix sums (the +1 is entirely lost
  // at 2^53 magnitude), so the prefix screen cannot decide and must fall back
  // to the compensated walk, which recovers the range sum exactly. The
  // detection then agrees bitwise with the naive Kahan reference.
  std::vector<std::string> row = {"998", "9007199254740992", "1",
                                  "-9007199254740992"};
  for (int i = 0; i < 997; ++i) row.push_back("1");
  const auto grid = MakeNumeric({row});
  const std::vector<bool> active(static_cast<size_t>(grid.columns()), true);

  const auto kernel = DetectAdjacentCommutative(grid, active, 0,
                                                AggregationFunction::kSum, 0.0);
  const auto naive = DetectAdjacentCommutativeNaive(
      grid, active, 0, AggregationFunction::kSum, 0.0);
  ExpectIdenticalScan(kernel, naive, "cancellation");

  // And the aggregation over the full 1000-column range is actually found.
  std::vector<int> range(1000);
  for (int i = 0; i < 1000; ++i) range[i] = i + 1;
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel, aggrecol::testing::Agg(0, 0, range, AggregationFunction::kSum)));
}

TEST(AxisView, RowViewMatchesGrid) {
  const auto grid = MakeNumeric({{"1", "x", "3"}, {"", "5", "abc"}});
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
  EXPECT_FALSE(view.transposed());
  ASSERT_EQ(view.rows(), grid.rows());
  ASSERT_EQ(view.columns(), grid.columns());
  for (int i = 0; i < grid.rows(); ++i) {
    for (int j = 0; j < grid.columns(); ++j) {
      EXPECT_EQ(view.kind(i, j), grid.kind(i, j));
      EXPECT_EQ(view.value(i, j), grid.value(i, j));
    }
  }
  EXPECT_EQ(view.format(), grid.format());
}

TEST(AxisView, ColumnViewMatchesTransposedCopy) {
  const auto grid = MakeNumeric({{"1", "x", "3"}, {"", "5", "abc"}});
  const numfmt::NumericGrid transposed = grid.Transposed();
  const numfmt::AxisView view = numfmt::AxisView::Columns(grid);
  EXPECT_TRUE(view.transposed());
  ASSERT_EQ(view.rows(), transposed.rows());
  ASSERT_EQ(view.columns(), transposed.columns());
  for (int i = 0; i < transposed.rows(); ++i) {
    for (int j = 0; j < transposed.columns(); ++j) {
      EXPECT_EQ(view.kind(i, j), transposed.kind(i, j));
      EXPECT_EQ(view.value(i, j), transposed.value(i, j));
      EXPECT_EQ(view.IsNumeric(i, j), transposed.IsNumeric(i, j));
      EXPECT_EQ(view.IsRangeUsable(i, j), transposed.IsRangeUsable(i, j));
    }
    EXPECT_EQ(view.NumericCountInRow(i), transposed.NumericCountInRow(i));
  }
  for (int j = 0; j < transposed.columns(); ++j) {
    EXPECT_EQ(view.NumericCountInColumn(j), transposed.NumericCountInColumn(j));
  }
}

TEST(AxisView, ImplicitConversionIsRowView) {
  const auto grid = MakeNumeric({{"1", "2"}, {"3", "4"}});
  const numfmt::AxisView view = grid;  // implicit
  EXPECT_FALSE(view.transposed());
  EXPECT_EQ(view.value(1, 0), 3.0);
}

TEST(LineIndex, CompactsUsableCellsWithPrefixSums) {
  // "x" is a zero marker (usable, value 0), "abc" is text (skipped), and
  // column 4 is masked out.
  const auto grid = MakeNumeric({{"10", "x", "abc", "20", "30", "40"}});
  std::vector<bool> active(6, true);
  active[4] = false;
  LineIndex index;
  index.Build(grid, active, 0);
  ASSERT_EQ(index.size(), 4);
  EXPECT_EQ(index.col(0), 0);
  EXPECT_EQ(index.col(1), 1);
  EXPECT_EQ(index.col(2), 3);
  EXPECT_EQ(index.col(3), 5);
  EXPECT_TRUE(index.is_numeric(0));
  EXPECT_FALSE(index.is_numeric(1));  // zero marker: usable, not an aggregate
  EXPECT_DOUBLE_EQ(index.value(3), 40.0);
  EXPECT_DOUBLE_EQ(index.PrefixSum(0, 4), 70.0);
  EXPECT_DOUBLE_EQ(index.PrefixSum(1, 3), 20.0);
  EXPECT_DOUBLE_EQ(index.PrefixSum(2, 2), 0.0);
}

TEST(LineIndex, CompensatedSumHonorsWalkOrder) {
  const auto grid = MakeNumeric({{"1.5", "2.25", "3.125", "4"}});
  const std::vector<bool> active(4, true);
  LineIndex index;
  index.Build(grid, active, 0);
  KahanAccumulator forward;
  for (double v : {1.5, 2.25, 3.125, 4.0}) forward.Add(v);
  EXPECT_EQ(index.CompensatedSum(0, 4, false), forward.Total());
  KahanAccumulator backward;
  for (double v : {4.0, 3.125, 2.25, 1.5}) backward.Add(v);
  EXPECT_EQ(index.CompensatedSum(0, 4, true), backward.Total());
}

TEST(LineIndex, SpanBoundsMatchBruteForce) {
  std::mt19937 rng(0x5BA7);
  std::vector<std::string> row;
  for (int j = 0; j < 37; ++j) {
    row.push_back(std::to_string(static_cast<int>(rng() % 2000) - 1000) + "." +
                  std::to_string(rng() % 100));
  }
  const auto grid = numfmt::NumericGrid::FromGrid(
      csv::Grid(std::vector<std::vector<std::string>>{row}),
      numfmt::NumberFormat::kCommaDot);
  const std::vector<bool> active(row.size(), true);
  LineIndex index;
  index.Build(grid, active, 0);
  ASSERT_EQ(index.size(), 37);
  index.BuildSpanBounds();
  for (int begin = 0; begin < index.size(); ++begin) {
    for (int end = begin + 1; end <= index.size(); ++end) {
      double lo = index.value(begin);
      double hi = index.value(begin);
      for (int pos = begin + 1; pos < end; ++pos) {
        lo = std::min(lo, index.value(pos));
        hi = std::max(hi, index.value(pos));
      }
      EXPECT_EQ(index.SpanMin(begin, end), lo) << begin << ", " << end;
      EXPECT_EQ(index.SpanMax(begin, end), hi) << begin << ", " << end;
    }
  }
}

TEST(LineIndex, SpanBoundsSurviveBufferReuseAcrossLines) {
  // BuildSpanBounds reuses its table buffers; a shorter rebuilt line must not
  // read stale entries from a previous, longer line.
  const auto wide = MakeNumeric({{"9", "8", "7", "6", "5", "4", "3", "2", "1"}});
  const auto narrow = MakeNumeric({{"2", "1", "3"}});
  LineIndex index;
  index.Build(wide, std::vector<bool>(9, true), 0);
  index.BuildSpanBounds();
  EXPECT_EQ(index.SpanMin(0, 9), 1.0);
  index.Build(narrow, std::vector<bool>(3, true), 0);
  index.BuildSpanBounds();
  EXPECT_EQ(index.SpanMin(0, 3), 1.0);
  EXPECT_EQ(index.SpanMax(0, 3), 3.0);
  EXPECT_EQ(index.SpanMax(0, 2), 2.0);
}

TEST(LineIndex, PosOfColumnInvertsCompaction) {
  const auto grid = MakeNumeric({{"10", "abc", "20", "x", "30"}});
  std::vector<bool> active(5, true);
  active[4] = false;
  LineIndex index;
  index.Build(grid, active, 0);
  ASSERT_EQ(index.size(), 3);
  EXPECT_EQ(index.PosOfColumn(0), 0);
  EXPECT_EQ(index.PosOfColumn(1), -1);  // text: not range-usable
  EXPECT_EQ(index.PosOfColumn(2), 1);
  EXPECT_EQ(index.PosOfColumn(3), 2);   // zero marker: usable
  EXPECT_EQ(index.PosOfColumn(4), -1);  // masked out
  for (int pos = 0; pos < index.size(); ++pos) {
    EXPECT_EQ(index.PosOfColumn(index.col(pos)), pos);
  }
}

TEST(LineIndex, SumErrorBoundNeverZeroOnAllZeroLine) {
  // Satellite regression: a line whose usable cells are all exactly zero used
  // to publish a drift bound of exactly 0, making the screen treat the prefix
  // sum as infinitely precise. The floor keeps the bound positive.
  const auto grid = MakeNumeric({{"0", "0", "0", "0", "0"}});
  const std::vector<bool> active(5, true);
  LineIndex index;
  index.Build(grid, active, 0);
  ASSERT_EQ(index.size(), 5);
  for (int end = 1; end <= index.size(); ++end) {
    EXPECT_GT(index.SumErrorBound(end), 0.0) << "end=" << end;
  }
}

TEST(LineIndex, SumErrorBoundNeverZeroOnDenormalLine) {
  // All-denormal magnitudes underflow the proportional gamma_n term itself;
  // the n * DBL_MIN floor must take over.
  const std::vector<std::string> row = {DecimalLiteral(5e-324),
                                        DecimalLiteral(-5e-324),
                                        DecimalLiteral(1e-320), "0"};
  const auto grid = MakeNumeric({row});
  const std::vector<bool> active(4, true);
  LineIndex index;
  index.Build(grid, active, 0);
  ASSERT_EQ(index.size(), 4);
  ASSERT_EQ(index.value(0), 5e-324);  // the literal round-trips exactly
  ASSERT_EQ(index.value(1), -5e-324);
  for (int end = 1; end <= index.size(); ++end) {
    EXPECT_GT(index.SumErrorBound(end), 0.0) << "end=" << end;
    EXPECT_GE(index.SumErrorBound(end),
              static_cast<double>(end) * std::numeric_limits<double>::min());
  }
}

TEST(Stage1Kernel, ZeroSumCancellationStillDetected) {
  // Sum over a cancelling range: aggregate 0 = 5.5 + (-5.5). With the drift
  // floor the screen keeps the candidate; both scans must agree bitwise and
  // actually find it.
  const auto grid = MakeNumeric({{"0", "5.5", "-5.5"}});
  const std::vector<bool> active(3, true);
  const auto kernel = DetectAdjacentCommutative(grid, active, 0,
                                                AggregationFunction::kSum, 0.0);
  const auto naive = DetectAdjacentCommutativeNaive(
      grid, active, 0, AggregationFunction::kSum, 0.0);
  ExpectIdenticalScan(kernel, naive, "zero-sum");
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel, aggrecol::testing::Agg(0, 0, {1, 2}, AggregationFunction::kSum)));
}

TEST(LineIndex, SumErrorBoundCoversPrefixDrift) {
  // The bound must dominate the observed |prefix subtraction - compensated
  // sum| discrepancy, including under heavy cancellation.
  std::vector<std::string> row = {"9007199254740992", "1", "-9007199254740992",
                                  "0.1", "0.2", "12345.6789"};
  const auto grid = MakeNumeric({row});
  const std::vector<bool> active(row.size(), true);
  LineIndex index;
  index.Build(grid, active, 0);
  for (int begin = 0; begin < index.size(); ++begin) {
    for (int end = begin + 1; end <= index.size(); ++end) {
      const double drift = std::fabs(index.PrefixSum(begin, end) -
                                     index.CompensatedSum(begin, end, false));
      EXPECT_LE(drift, index.SumErrorBound(end))
          << "span [" << begin << ", " << end << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Divisor boundary cases for the window kernels. The whole-window batch
// screen must hand windows whose divisor span straddles zero back to the
// per-pair screens, and those must skip exactly the pairs the reference
// skips (ApplyPairwise is undefined for c == 0 / b == 0).
// ---------------------------------------------------------------------------

TEST(WindowBoundary, ZeroDivisorsMatchNaive) {
  // Planted hits (1.03125 = 1056/1024, 0.03125 = (1056-1024)/1024) sit next
  // to exact-zero cells, so zero divisors appear inside live windows on both
  // axes; the "all zeros" row additionally makes every divisor zero.
  const auto grid = MakeNumeric({
      {"1.03125", "1056", "1024", "0", "7", "0", "3"},
      {"2", "8", "0", "4", "0", "-8", "16"},
      {"0", "0", "0", "0", "0", "0", "0"},
      {"0.03125", "1024", "1056", "0", "5", "0", "-5"},
  });
  ExpectKernelMatchesNaive(grid, "zero-divisor");
}

TEST(WindowBoundary, DenormalDivisorsMatchNaive) {
  // +/-denormal divisors: nonzero, so the reference divides by them, and the
  // screens must not misclassify them as the undefined c == 0 case; their
  // magnitudes also underflow naive threshold products.
  const std::string pos = DecimalLiteral(5e-324);
  const std::string neg = DecimalLiteral(-5e-324);
  const auto grid = MakeNumeric({
      {"1", pos, pos, "-1", pos, neg, DecimalLiteral(1e-320), "0", "2"},
      {"2", DecimalLiteral(1e-320), DecimalLiteral(5e-321), "0", neg, pos, "-1",
       "3", "4"},
  });
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
  // Guard the premise: the spelled-out denormals must classify as numeric and
  // parse to nonzero denormal doubles, otherwise this test silently
  // degenerates.
  ASSERT_TRUE(view.IsNumeric(0, 1));
  ASSERT_TRUE(view.IsNumeric(0, 5));
  ASSERT_EQ(view.value(0, 1), 5e-324);
  ASSERT_EQ(view.value(0, 5), -5e-324);
  ExpectKernelMatchesNaive(grid, "denormal-divisor");
}

TEST(WindowBoundary, SignFlipMidWindowMatchesNaive) {
  // Divisor values flip sign inside every window (-4 = 2 / -0.5 is a planted
  // division hit; -1.5 = (1 - -2) / -2 a planted relative change),
  // so the batch screen's divisor span straddles zero and must fall through
  // to the per-pair screens rather than reject or accept wholesale.
  const auto grid = MakeNumeric({
      {"-4", "2", "-0.5", "1", "-8", "0.25", "3", "-1.5"},
      {"-1.5", "-2", "1", "4", "-0.25", "6", "-3", "0.5"},
  });
  ExpectKernelMatchesNaive(grid, "sign-flip");
}

TEST(WindowBoundary, MirroredDifferenceKeepsFirstOnly) {
  // 5 = 8 - 3 and 3 = 8 - 5 are mirrored differences over the same cells;
  // the scan suppresses the mirror and keeps the first-emitted candidate.
  // This pins the emitted order as a regression guard: the screened kernel
  // must preserve the keep-first suppression exactly.
  const auto grid = MakeNumeric({{"5", "8", "3"}});
  const std::vector<bool> active(3, true);
  for (double level : Fig7Levels()) {
    ExpectIdenticalScan(
        DetectWindowPairwise(grid, active, 0, AggregationFunction::kDifference,
                             level, 10),
        DetectWindowPairwiseNaive(grid, active, 0,
                                  AggregationFunction::kDifference, level, 10),
        "mirror level=" + std::to_string(level));
  }
  const auto kernel = DetectWindowPairwise(
      grid, active, 0, AggregationFunction::kDifference, 0.0, 10);
  ASSERT_EQ(kernel.size(), 1u);
  EXPECT_EQ(kernel[0].aggregate, 0);
  EXPECT_EQ(kernel[0].range, (std::vector<int>{1, 2}));
}

// ---------------------------------------------------------------------------
// Stage-3 extension: the indexed screened path vs the retained naive walk.
// ---------------------------------------------------------------------------

TEST(ExtensionScreen, IndexedPathMatchesNaiveOnPlantedGrid) {
  // Pattern: sum over range {0, 2, 3} -> aggregate column 4. One plan over a
  // 5-column grid satisfies the cost model (3 + 16 >= 15), so the screened
  // implementation takes the indexed path.
  //  - row 0 seeds the pattern (non-contiguous: column 1 is numeric, so the
  //    compact positions of {0, 2, 3} are 0, 2, 3);
  //  - row 1 has text in column 1, making the range a contiguous compact
  //    prefix span -> O(1) prefix screen + compensated replay;
  //  - row 2 is the non-contiguous trap: an interleaved usable cell outside
  //    the range means no prefix span exists, and the kernel must replay the
  //    Kahan walk in range order instead of subtracting prefix sums;
  //  - row 3 is a certain miss the screen may reject;
  //  - row 4 has an unusable range cell and must be skipped by both.
  const auto grid = MakeNumeric({
      {"1", "9", "2", "3", "6"},
      {"1.5", "abc", "2.5", "3.5", "7.5"},
      {"2", "100", "3", "4", "9"},
      {"1", "1", "1", "1", "50"},
      {"1", "1", "abc", "1", "2"},
  });
  const std::vector<bool> active(5, true);
  const std::vector<Aggregation> detected = {
      aggrecol::testing::Agg(0, 4, {0, 2, 3}, AggregationFunction::kSum)};
  for (double level : Fig7Levels()) {
    const auto kernel = ExtendAggregations(grid, active, detected, level);
    const auto naive = ExtendAggregationsNaive(grid, active, detected, level);
    ExpectIdenticalScan(kernel, naive,
                        "extension level=" + std::to_string(level));
  }
  const auto kernel = ExtendAggregations(grid, active, detected, 0.0);
  ASSERT_EQ(kernel.size(), 3u);  // seed + contiguous row 1 + trap row 2
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel,
      aggrecol::testing::Agg(1, 4, {0, 2, 3}, AggregationFunction::kSum)));
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel,
      aggrecol::testing::Agg(2, 4, {0, 2, 3}, AggregationFunction::kSum)));
}

TEST(ExtensionScreen, PairwiseZeroOperandsSkippedIdentically) {
  // Division pattern col0 = col1 / col2 and relative-change pattern
  // col3 = (col2 - col1) / col1, both seeded on row 0. Row 1 has a zero
  // divisor (c == 0: division undefined, relative change fine); row 2 has a
  // zero base (b == 0: relative change undefined, division fine). The
  // screened path must skip exactly what the reference skips.
  const auto grid = MakeNumeric({
      {"2", "8", "4", "-0.5", "0"},
      {"9", "8", "0", "-1", "0"},
      {"0", "0", "5", "7", "0"},
      {"4", "16", "4", "-0.75", "0"},
      {"5", "8", "4", "3", "0"},
  });
  const std::vector<bool> active(5, true);
  const std::vector<Aggregation> detected = {
      aggrecol::testing::Agg(0, 0, {1, 2}, AggregationFunction::kDivision),
      aggrecol::testing::Agg(0, 3, {1, 2},
                             AggregationFunction::kRelativeChange)};
  for (double level : Fig7Levels()) {
    ExpectIdenticalScan(ExtendAggregations(grid, active, detected, level),
                        ExtendAggregationsNaive(grid, active, detected, level),
                        "pairwise-zero level=" + std::to_string(level));
  }
  const auto kernel = ExtendAggregations(grid, active, detected, 0.0);
  // Row 1: relative change extends ((0 - 8) / 8 = -1), division must not.
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel, aggrecol::testing::Agg(1, 3, {1, 2},
                                     AggregationFunction::kRelativeChange)));
  EXPECT_FALSE(aggrecol::testing::Contains(
      kernel,
      aggrecol::testing::Agg(1, 0, {1, 2}, AggregationFunction::kDivision)));
  // Row 2: division extends (0 / 5 = 0), relative change must not.
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel,
      aggrecol::testing::Agg(2, 0, {1, 2}, AggregationFunction::kDivision)));
  EXPECT_FALSE(aggrecol::testing::Contains(
      kernel, aggrecol::testing::Agg(2, 3, {1, 2},
                                     AggregationFunction::kRelativeChange)));
  // Row 3: both extend.
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel,
      aggrecol::testing::Agg(3, 0, {1, 2}, AggregationFunction::kDivision)));
  EXPECT_TRUE(aggrecol::testing::Contains(
      kernel, aggrecol::testing::Agg(3, 3, {1, 2},
                                     AggregationFunction::kRelativeChange)));
}

TEST(ExtensionScreen, MatchesNaiveOnGeneratedCorpus) {
  // Corpus differential: seed the extension with naive stage-1 detections
  // from even lines only (leaving the odd lines as extension opportunities)
  // and require the screened walk to emit the identical result, bit-equal
  // errors included, on both axes.
  const auto corpus = datagen::GenerateSmallCorpus(60, 0x5EED);
  ASSERT_EQ(corpus.size(), 60u);
  const AggregationFunction functions[] = {AggregationFunction::kSum,
                                           AggregationFunction::kAverage,
                                           AggregationFunction::kDivision};
  for (const auto& file : corpus) {
    const auto grid = numfmt::NumericGrid::FromGrid(file.grid, file.format);
    const numfmt::AxisView views[] = {numfmt::AxisView::Rows(grid),
                                      numfmt::AxisView::Columns(grid)};
    for (const auto& view : views) {
      const std::vector<bool> mask(static_cast<size_t>(view.columns()), true);
      for (double level : {0.0, 0.01}) {
        std::vector<Aggregation> detected;
        for (AggregationFunction function : functions) {
          for (int line = 0; line < view.rows(); line += 2) {
            const auto found =
                TraitsOf(function).commutative
                    ? DetectAdjacentCommutativeNaive(view, mask, line, function,
                                                     level)
                    : DetectWindowPairwiseNaive(view, mask, line, function,
                                                level, 10);
            detected.insert(detected.end(), found.begin(), found.end());
          }
        }
        ExpectIdenticalScan(
            ExtendAggregations(view, mask, detected, level),
            ExtendAggregationsNaive(view, mask, detected, level),
            file.name + " extension axis=" +
                (view.transposed() ? "col" : "row") +
                " level=" + std::to_string(level));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stage-2 collective pruning: precomputed-predicate walk vs naive reference.
// ---------------------------------------------------------------------------

TEST(Stage2Collective, FastPruneMatchesNaiveOnRandomConflicts) {
  // Random candidates crammed into a narrow column space, so ranges overlap,
  // include each other, and share aggregates constantly. Both walks rank with
  // the shared comparator, so the outputs must be elementwise identical.
  const auto grid = MakeNumeric({
      {"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12"},
      {"2", "4", "6", "8", "10", "12", "14", "16", "18", "20", "22", "24"},
      {"3", "6", "9", "12", "15", "18", "21", "24", "27", "30", "33", "36"},
      {"5", "1", "4", "1", "5", "9", "2", "6", "5", "3", "5", "8"},
  });
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
  std::mt19937 rng(0xC011EC7);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Aggregation> candidates;
    for (int i = 0; i < 30; ++i) {
      const auto function =
          kAllFunctions[rng() % kAllFunctions.size()];
      const int aggregate = static_cast<int>(rng() % 12);
      const int length =
          TraitsOf(function).pairwise ? 2 : 1 + static_cast<int>(rng() % 4);
      const int start = static_cast<int>(rng() % 12);
      std::vector<int> range;
      for (int k = 0; k < length; ++k) range.push_back((start + k) % 12);
      candidates.push_back(aggrecol::testing::Agg(
          static_cast<int>(rng() % 4), aggregate, std::move(range), function));
    }
    ExpectIdenticalScan(CollectivePrune(view, candidates),
                        CollectivePruneNaive(view, candidates),
                        "stage2 trial " + std::to_string(trial));
  }
}

TEST(Stage2Collective, DisjointGroupsAllSurviveBothWalks) {
  const auto grid = MakeNumeric({
      {"3", "1", "2", "7", "3", "4", "2", "8", "4", "0.5", "6", "12"},
  });
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
  const std::vector<Aggregation> candidates = {
      aggrecol::testing::Agg(0, 0, {1, 2}, AggregationFunction::kSum),
      aggrecol::testing::Agg(0, 3, {4, 5}, AggregationFunction::kSum),
      aggrecol::testing::Agg(0, 7, {6, 8}, AggregationFunction::kDifference),
      aggrecol::testing::Agg(0, 9, {10, 11}, AggregationFunction::kDivision),
  };
  const auto fast = CollectivePrune(view, candidates);
  const auto naive = CollectivePruneNaive(view, candidates);
  ExpectIdenticalScan(fast, naive, "disjoint");
  EXPECT_EQ(fast.size(), candidates.size());
}

TEST(Stage2Collective, GroupStatsMatchRecomputation) {
  // GroupByPattern precomputes sorted_range, side, and ratio_fraction; they
  // must agree with a from-scratch recomputation, and every PatternGroup
  // predicate overload must agree with its Pattern oracle on all pairs.
  const auto grid = MakeNumeric({
      {"0.5", "4", "8", "2", "-0.25", "3"},
      {"1.5", "3", "2", "0", "7", "-2"},
  });
  const numfmt::AxisView view = numfmt::AxisView::Rows(grid);
  const std::vector<Aggregation> candidates = {
      // Division group with one ratio-like member (0.5) and one not (1.5).
      aggrecol::testing::Agg(0, 0, {1, 2}, AggregationFunction::kDivision),
      aggrecol::testing::Agg(1, 0, {1, 2}, AggregationFunction::kDivision),
      // Division group whose observed aggregate is 0 (not ratio-like).
      aggrecol::testing::Agg(1, 3, {4, 5}, AggregationFunction::kDivision),
      // Unsorted mixed-side sum range.
      aggrecol::testing::Agg(0, 3, {4, 5, 1}, AggregationFunction::kSum),
      // Left-side pairwise difference.
      aggrecol::testing::Agg(0, 5, {1, 2}, AggregationFunction::kDifference),
      // Overlapping / including patterns to exercise the predicates.
      aggrecol::testing::Agg(0, 2, {0, 1, 3, 4}, AggregationFunction::kSum),
      aggrecol::testing::Agg(0, 4, {2, 3}, AggregationFunction::kSum),
  };
  const auto groups = GroupByPattern(view, candidates);
  for (const auto& group : groups) {
    std::vector<int> expected_sorted = group.pattern.range;
    std::sort(expected_sorted.begin(), expected_sorted.end());
    EXPECT_EQ(group.sorted_range, expected_sorted);
    EXPECT_EQ(group.side, SideOf(group.pattern));
    if (group.pattern.function == AggregationFunction::kDivision) {
      int ratio_like = 0;
      for (const auto& member : group.members) {
        const double value = view.value(member.line, member.aggregate);
        if (value > -1.0 && value < 1.0 && value != 0.0) ++ratio_like;
      }
      EXPECT_EQ(group.ratio_fraction,
                static_cast<double>(ratio_like) /
                    static_cast<double>(group.members.size()));
    } else {
      EXPECT_EQ(group.ratio_fraction, 0.0);
    }
  }
  for (const auto& a : groups) {
    for (const auto& b : groups) {
      EXPECT_EQ(DirectionalDisagreement(a, b),
                DirectionalDisagreement(a.pattern, b.pattern));
      EXPECT_EQ(CompleteInclusion(a, b), CompleteInclusion(a.pattern, b.pattern));
      EXPECT_EQ(MutualInclusion(a, b), MutualInclusion(a.pattern, b.pattern));
      EXPECT_EQ(SameAggregateOverlappingRange(a, b),
                SameAggregateOverlappingRange(a.pattern, b.pattern));
    }
  }
}

}  // namespace
}  // namespace aggrecol::core
