#include "core/individual_detector.h"

#include "gtest/gtest.h"
#include "numfmt/numeric_grid.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::Contains;
using aggrecol::testing::Figure5Grid;
using aggrecol::testing::MakeNumeric;

IndividualConfig Config(double error = 0.0, double coverage = 0.7, int window = 10) {
  IndividualConfig config;
  config.error_level = error;
  config.coverage = coverage;
  config.window_size = window;
  return config;
}

TEST(Individual, SimpleSumTable) {
  const auto grid = MakeNumeric({
      {"total", "a", "b"},
      {"3", "1", "2"},
      {"7", "3", "4"},
      {"11", "5", "6"},
  });
  const auto found =
      DetectIndividualRowwise(grid, AggregationFunction::kSum, Config());
  EXPECT_EQ(found.size(), 3u);
  EXPECT_TRUE(Contains(found, Agg(1, 0, {1, 2}, AggregationFunction::kSum)));
  EXPECT_TRUE(Contains(found, Agg(3, 0, {1, 2}, AggregationFunction::kSum)));
}

TEST(Individual, Figure5SumDetection) {
  const auto numeric =
      numfmt::NumericGrid::FromGrid(Figure5Grid(), numfmt::NumberFormat::kCommaDot);
  const auto found =
      DetectIndividualRowwise(numeric, AggregationFunction::kSum, Config());

  // a1: C1 = C2+...+C7 for all data rows except 2018 (the paper's own
  // deviation: 5791 vs a true sum of 5792).
  for (int row : {1, 2, 3, 4, 5, 7}) {
    EXPECT_TRUE(
        Contains(found, Agg(row, 1, {2, 3, 4, 5, 6, 7}, AggregationFunction::kSum)))
        << "a1 row " << row;
  }
  EXPECT_FALSE(
      Contains(found, Agg(6, 1, {2, 3, 4, 5, 6, 7}, AggregationFunction::kSum)));

  // a2: C8 = C9 + C10 for every data row.
  for (int row = 1; row <= 7; ++row) {
    EXPECT_TRUE(Contains(found, Agg(row, 8, {9, 10}, AggregationFunction::kSum)))
        << "a2 row " << row;
  }

  // a3 (cumulative): C12 = C1 + C8 + C11, discovered after the member columns
  // are consumed by the first iteration.
  for (int row : {1, 2, 3, 4, 5, 7}) {
    EXPECT_TRUE(Contains(found, Agg(row, 12, {1, 8, 11}, AggregationFunction::kSum)))
        << "a3 row " << row;
  }
}

TEST(Individual, Figure5DivisionDetection) {
  const auto numeric =
      numfmt::NumericGrid::FromGrid(Figure5Grid(), numfmt::NumberFormat::kCommaDot);
  const auto found = DetectIndividualRowwise(numeric, AggregationFunction::kDivision,
                                             Config(1e-6));
  // a4: C13 = C9 / C8 for every data row.
  for (int row = 1; row <= 7; ++row) {
    EXPECT_TRUE(Contains(found, Agg(row, 13, {9, 8}, AggregationFunction::kDivision)))
        << "a4 row " << row;
  }
}

TEST(Individual, CumulativeIterationConsumesRangeColumns) {
  // Grand = G1 + G2 where G1 = a+b and G2 = c+d; the grand total is only
  // adjacent once the member columns are consumed (Fig. 3b).
  const auto grid = MakeNumeric({
      {"10", "3", "1", "2", "7", "3", "4"},
      {"14", "5", "2", "3", "9", "4", "5"},
      {"22", "9", "4", "5", "13", "6", "7"},
  });
  const auto found =
      DetectIndividualRowwise(grid, AggregationFunction::kSum, Config());
  EXPECT_TRUE(Contains(found, Agg(0, 1, {2, 3}, AggregationFunction::kSum)));
  EXPECT_TRUE(Contains(found, Agg(0, 4, {5, 6}, AggregationFunction::kSum)));
  EXPECT_TRUE(Contains(found, Agg(0, 0, {1, 4}, AggregationFunction::kSum)));
}

TEST(Individual, NonCumulativeFunctionsRunOnce) {
  // Average of averages must not be stacked: after detecting the averages,
  // the detector stops (Table 1: average is not cumulative).
  const auto grid = MakeNumeric({
      {"2", "2", "1", "3", "2", "1", "3"},
      {"4", "4", "3", "5", "4", "3", "5"},
      {"6", "6", "5", "7", "6", "5", "7"},
  });
  const auto found =
      DetectIndividualRowwise(grid, AggregationFunction::kAverage, Config());
  // Column 1 averages {2,3}; column 4 averages {5,6}. Column 0 would average
  // {1,4} only across a second iteration, which must not happen.
  EXPECT_FALSE(Contains(found, Agg(0, 0, {1, 4}, AggregationFunction::kAverage)));
}

TEST(Individual, CoveragePrunesSpuriousPatterns) {
  // A coincidental sum in a single row is dropped by the coverage threshold.
  const auto grid = MakeNumeric({
      {"3", "1", "2"},
      {"9", "1", "2"},
      {"8", "1", "2"},
      {"7", "1", "2"},
  });
  const auto found =
      DetectIndividualRowwise(grid, AggregationFunction::kSum, Config(0.0, 0.7));
  EXPECT_TRUE(found.empty());
}

TEST(Individual, InitialMaskRestrictsDetection) {
  const auto grid = MakeNumeric({
      {"3", "9", "1", "2"},
      {"5", "9", "2", "3"},
  });
  std::vector<bool> active = {true, false, true, true};
  const auto found = DetectIndividualRowwise(grid, AggregationFunction::kSum,
                                             Config(), &active);
  EXPECT_TRUE(Contains(found, Agg(0, 0, {2, 3}, AggregationFunction::kSum)));
  for (const auto& aggregation : found) {
    EXPECT_NE(aggregation.aggregate, 1);
  }
}

TEST(Individual, EmptyGridYieldsNothing) {
  const auto grid = MakeNumeric({{""}});
  EXPECT_TRUE(
      DetectIndividualRowwise(grid, AggregationFunction::kSum, Config()).empty());
}

TEST(Individual, DifferenceDetectionViaWindow) {
  const auto grid = MakeNumeric({
      {"6", "10", "4"},
      {"3", "8", "5"},
      {"1", "9", "8"},
  });
  const auto found =
      DetectIndividualRowwise(grid, AggregationFunction::kDifference, Config());
  for (int row = 0; row < 3; ++row) {
    EXPECT_TRUE(Contains(found, Agg(row, 0, {1, 2}, AggregationFunction::kDifference)))
        << "row " << row;
  }
}

}  // namespace
}  // namespace aggrecol::core
