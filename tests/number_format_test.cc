#include "numfmt/number_format.h"

#include <random>

#include "gtest/gtest.h"
#include "numfmt/parse_double.h"
#include "tests/test_support.h"
#include "util/string_util.h"

namespace aggrecol::numfmt {
namespace {

TEST(FormatProperties, SeparatorsPerTable4) {
  EXPECT_EQ(GroupSeparator(NumberFormat::kSpaceComma), ' ');
  EXPECT_EQ(DecimalSeparator(NumberFormat::kSpaceComma), ',');
  EXPECT_EQ(GroupSeparator(NumberFormat::kSpaceDot), ' ');
  EXPECT_EQ(DecimalSeparator(NumberFormat::kSpaceDot), '.');
  EXPECT_EQ(GroupSeparator(NumberFormat::kCommaDot), ',');
  EXPECT_EQ(DecimalSeparator(NumberFormat::kCommaDot), '.');
  EXPECT_EQ(GroupSeparator(NumberFormat::kNoneComma), '\0');
  EXPECT_EQ(DecimalSeparator(NumberFormat::kNoneComma), ',');
  EXPECT_EQ(GroupSeparator(NumberFormat::kNoneDot), '\0');
  EXPECT_EQ(DecimalSeparator(NumberFormat::kNoneDot), '.');
}

TEST(FormatProperties, PriorsSumToOne) {
  double total = 0.0;
  for (NumberFormat format : kAllNumberFormats) total += OccurrencePrior(format);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // comma/dot is the most common format in Troy (66.5%).
  EXPECT_GT(OccurrencePrior(NumberFormat::kCommaDot), 0.6);
}

struct MatchCase {
  const char* text;
  NumberFormat format;
  bool matches;
  double value;  // only meaningful when matches
};

class MatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(MatchTest, MatchAndParse) {
  const MatchCase& c = GetParam();
  EXPECT_EQ(MatchesFormat(c.text, c.format), c.matches) << c.text;
  const auto parsed = ParseNumber(c.text, c.format);
  EXPECT_EQ(parsed.has_value(), c.matches) << c.text;
  if (c.matches) {
    EXPECT_DOUBLE_EQ(*parsed, c.value) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table4Examples, MatchTest,
    ::testing::Values(
        MatchCase{"12 345,67", NumberFormat::kSpaceComma, true, 12345.67},
        MatchCase{"12 345.67", NumberFormat::kSpaceDot, true, 12345.67},
        MatchCase{"12,345.67", NumberFormat::kCommaDot, true, 12345.67},
        MatchCase{"12345,67", NumberFormat::kNoneComma, true, 12345.67},
        MatchCase{"12345.67", NumberFormat::kNoneDot, true, 12345.67}));

INSTANTIATE_TEST_SUITE_P(
    CrossFormatRejections, MatchTest,
    ::testing::Values(
        // A comma-grouped number is not valid under space grouping.
        MatchCase{"12,345.67", NumberFormat::kSpaceDot, false, 0},
        // Wrong group width.
        MatchCase{"12,34", NumberFormat::kCommaDot, false, 0},
        MatchCase{"1 23 456", NumberFormat::kSpaceDot, false, 0},
        // Group of four digits.
        MatchCase{"1,2345", NumberFormat::kCommaDot, false, 0},
        // Two decimal separators.
        MatchCase{"1.2.3", NumberFormat::kNoneDot, false, 0},
        // Trailing separator.
        MatchCase{"123,", NumberFormat::kNoneComma, false, 0},
        // Plain text.
        MatchCase{"total", NumberFormat::kCommaDot, false, 0},
        MatchCase{"", NumberFormat::kCommaDot, false, 0}));

INSTANTIATE_TEST_SUITE_P(
    AmbiguityAndEdge, MatchTest,
    ::testing::Values(
        // Plain integers match any format.
        MatchCase{"12345", NumberFormat::kSpaceComma, true, 12345},
        MatchCase{"12345", NumberFormat::kNoneDot, true, 12345},
        // "12,345" means 12345 with comma grouping but 12.345 with comma
        // decimals (the Sec. 4.2 motivating ambiguity).
        MatchCase{"12,345", NumberFormat::kCommaDot, true, 12345},
        MatchCase{"12,345", NumberFormat::kNoneComma, true, 12.345},
        // "1.000" is 1000 grouped or 1.0 decimal, depending on the format.
        MatchCase{"1.000", NumberFormat::kNoneDot, true, 1.0},
        // Signs.
        MatchCase{"-42", NumberFormat::kCommaDot, true, -42},
        MatchCase{"+3.5", NumberFormat::kCommaDot, true, 3.5},
        // Accounting parentheses negate.
        MatchCase{"(123)", NumberFormat::kCommaDot, true, -123},
        MatchCase{"(1,234.5)", NumberFormat::kCommaDot, true, -1234.5},
        // Percent divides by 100.
        MatchCase{"45%", NumberFormat::kCommaDot, true, 0.45},
        MatchCase{"12,5%", NumberFormat::kNoneComma, true, 0.125},
        // Surrounding whitespace is tolerated.
        MatchCase{"  7.5 ", NumberFormat::kCommaDot, true, 7.5},
        // Currency prefixes are stripped.
        MatchCase{"$1,234.50", NumberFormat::kCommaDot, true, 1234.5},
        MatchCase{"$ 12 345,67", NumberFormat::kSpaceComma, true, 12345.67},
        MatchCase{"\u20ac99", NumberFormat::kCommaDot, true, 99},
        MatchCase{"\u00a37.5", NumberFormat::kCommaDot, true, 7.5},
        MatchCase{"-$5", NumberFormat::kCommaDot, true, -5},
        // A bare currency symbol is not a number.
        MatchCase{"$", NumberFormat::kCommaDot, false, 0},
        // Multi-group numbers.
        MatchCase{"1 234 567,89", NumberFormat::kSpaceComma, true, 1234567.89},
        MatchCase{"12,345,678", NumberFormat::kCommaDot, true, 12345678}));

TEST(ElectFormat, PicksMajorityFormat) {
  const auto grid = aggrecol::testing::MakeGrid({
      {"Year", "Value"},
      {"2001", "12 345,67"},
      {"2002", "2 345,00"},
      {"2003", "345,99"},
  });
  EXPECT_EQ(ElectFormat(grid), NumberFormat::kSpaceComma);
}

TEST(ElectFormat, TieBrokenByTroyPrior) {
  // Pure integers match every format equally; comma/dot has the top prior.
  const auto grid = aggrecol::testing::MakeGrid({{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(ElectFormat(grid), NumberFormat::kCommaDot);
}

TEST(ElectFormat, CommaDecimalsBeatCommaGroupsWhenWidthsWrong) {
  // "12,5" is invalid comma-grouping, so the comma must be elected as the
  // decimal separator. (Both comma-decimal formats match — grouping is
  // optional — and the Troy prior picks space/comma; what matters is that
  // the decimal interpretation is the comma.)
  const auto grid = aggrecol::testing::MakeGrid({
      {"12,5", "3,25"},
      {"0,75", "19,1"},
  });
  EXPECT_EQ(DecimalSeparator(ElectFormat(grid)), ',');
}

TEST(FormatNumber, GroupsDigits) {
  EXPECT_EQ(FormatNumber(1234567.89, NumberFormat::kSpaceComma, 2), "1 234 567,89");
  EXPECT_EQ(FormatNumber(1234567.89, NumberFormat::kCommaDot, 2), "1,234,567.89");
  EXPECT_EQ(FormatNumber(1234567.89, NumberFormat::kNoneComma, 2), "1234567,89");
  EXPECT_EQ(FormatNumber(123.0, NumberFormat::kCommaDot, 0), "123");
  EXPECT_EQ(FormatNumber(-1234.5, NumberFormat::kCommaDot, 1), "-1,234.5");
  EXPECT_EQ(FormatNumber(0.0, NumberFormat::kCommaDot, 0), "0");
}

// Property: FormatNumber output always parses back to the same value under
// the same format, for every format.
class FormatRoundTrip : public ::testing::TestWithParam<NumberFormat> {};

TEST_P(FormatRoundTrip, RandomValues) {
  const NumberFormat format = GetParam();
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int decimals = static_cast<int>(rng() % 3);
    double value = std::uniform_real_distribution<double>(-1e7, 1e7)(rng);
    // Round through the decimal representation first, as the generator does.
    value = ParseDouble(util::FormatDouble(value, decimals)).value_or(0.0);
    const std::string text = FormatNumber(value, format, decimals);
    const auto parsed = ParseNumber(text, format);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, value) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, FormatRoundTrip,
                         ::testing::ValuesIn(kAllNumberFormats));

}  // namespace
}  // namespace aggrecol::numfmt
