#include "eval/dataset_io.h"

#include <filesystem>
#include <sstream>

#include "cli/arg_parser.h"
#include "cli/commands.h"
#include "datagen/file_generator.h"
#include "gtest/gtest.h"
#include "util/file_io.h"

namespace aggrecol::eval {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "aggrecol_dataset_io_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, SaveLoadRoundTrip) {
  const auto file = datagen::GenerateFile(datagen::GeneratorProfile{}, 17, "x.csv");
  ASSERT_TRUE(SaveAnnotatedFile(dir_.string(), "sample", file));

  const auto loaded = LoadAnnotatedFile((dir_ / "sample.csv").string(),
                                        (dir_ / "sample.annotations").string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->grid, file.grid);
  ASSERT_EQ(loaded->annotations.size(), file.annotations.size());
  for (size_t i = 0; i < file.annotations.size(); ++i) {
    EXPECT_EQ(loaded->annotations[i], file.annotations[i]);
  }
}

TEST_F(DatasetIoTest, CompositesRoundTripThroughSidecar) {
  datagen::GeneratorProfile profile;
  profile.p_no_aggregation = 0.0;
  profile.p_composite = 1.0;
  const auto file = datagen::GenerateFile(profile, 321, "c.csv");
  ASSERT_FALSE(file.composites.empty());
  ASSERT_TRUE(SaveAnnotatedFile(dir_.string(), "composite", file));

  const auto loaded = LoadAnnotatedFile((dir_ / "composite.csv").string(),
                                        (dir_ / "composite.annotations").string());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->composites.size(), file.composites.size());
  for (size_t i = 0; i < file.composites.size(); ++i) {
    EXPECT_EQ(loaded->composites[i], file.composites[i]);
  }
  // And the plain annotations survive alongside.
  EXPECT_EQ(loaded->annotations.size(), file.annotations.size());
}

TEST_F(DatasetIoTest, MissingSidecarYieldsEmptyTruth) {
  util::WriteFile((dir_ / "plain.csv").string(), "a,b\n1,2\n");
  const auto loaded = LoadAnnotatedFile((dir_ / "plain.csv").string(),
                                        (dir_ / "plain.annotations").string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->annotations.empty());
  EXPECT_EQ(loaded->grid.rows(), 2);
}

TEST_F(DatasetIoTest, MalformedSidecarFails) {
  util::WriteFile((dir_ / "bad.csv").string(), "a,b\n1,2\n");
  util::WriteFile((dir_ / "bad.annotations").string(), "not,a,valid,annotation\n");
  EXPECT_FALSE(LoadAnnotatedFile((dir_ / "bad.csv").string(),
                                 (dir_ / "bad.annotations").string())
                   .has_value());
}

TEST_F(DatasetIoTest, MissingCsvFails) {
  EXPECT_FALSE(
      LoadAnnotatedFile((dir_ / "none.csv").string(), "").has_value());
}

TEST_F(DatasetIoTest, LoadCorpusDirectory) {
  for (int i = 0; i < 3; ++i) {
    const auto file = datagen::GenerateFile(datagen::GeneratorProfile{}, 100 + i,
                                            "f" + std::to_string(i));
    ASSERT_TRUE(SaveAnnotatedFile(dir_.string(), "f" + std::to_string(i), file));
  }
  // A non-CSV file is ignored.
  util::WriteFile((dir_ / "README.txt").string(), "not a table");

  const auto corpus = LoadCorpusDirectory(dir_.string());
  ASSERT_TRUE(corpus.has_value());
  EXPECT_EQ(corpus->size(), 3u);
  // Ordered by name.
  EXPECT_NE((*corpus)[0].name.find("f0.csv"), std::string::npos);
  EXPECT_NE((*corpus)[2].name.find("f2.csv"), std::string::npos);
}

TEST_F(DatasetIoTest, EmptyDirectoryLoadsEmptyCorpus) {
  const auto corpus = LoadCorpusDirectory(dir_.string());
  ASSERT_TRUE(corpus.has_value());
  EXPECT_TRUE(corpus->empty());
}

TEST_F(DatasetIoTest, BenchmarkCommandOverDirectory) {
  for (int i = 0; i < 2; ++i) {
    const auto file = datagen::GenerateFile(datagen::GeneratorProfile{}, 55 + i,
                                            "g" + std::to_string(i));
    ASSERT_TRUE(SaveAnnotatedFile(dir_.string(), "g" + std::to_string(i), file));
  }
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::RunBenchmark(
      cli::ArgParser::Parse({"benchmark", dir_.string()}), out, err);
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("precision"), std::string::npos);
  EXPECT_NE(out.str().find("2 files"), std::string::npos);
}

}  // namespace
}  // namespace aggrecol::eval
