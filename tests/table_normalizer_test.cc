#include "core/table_normalizer.h"

#include "core/aggrecol.h"
#include "gtest/gtest.h"
#include "tests/test_support.h"

namespace aggrecol::core {
namespace {

using aggrecol::testing::Agg;
using aggrecol::testing::MakeGrid;

TEST(TableNormalizer, StripsDerivedColumn) {
  const auto grid = MakeGrid({
      {"Item", "A", "B", "Sum"},
      {"x", "1", "4", "5"},
      {"y", "2", "5", "7"},
      {"z", "3", "6", "9"},
  });
  const std::vector<Aggregation> aggregations = {
      Agg(1, 3, {1, 2}, AggregationFunction::kSum),
      Agg(2, 3, {1, 2}, AggregationFunction::kSum),
      Agg(3, 3, {1, 2}, AggregationFunction::kSum),
  };
  const auto result = StripAggregates(grid, aggregations);
  EXPECT_EQ(result.removed_columns, (std::vector<int>{3}));
  EXPECT_TRUE(result.removed_rows.empty());
  EXPECT_EQ(result.grid.columns(), 3);
  EXPECT_EQ(result.grid.at(0, 2), "B");
  EXPECT_EQ(result.grid.at(1, 2), "4");
}

TEST(TableNormalizer, StripsTotalRow) {
  const auto grid = MakeGrid({
      {"Item", "A", "B"},
      {"x", "1", "4"},
      {"y", "2", "5"},
      {"Total", "3", "9"},
  });
  const std::vector<Aggregation> aggregations = {
      Agg(1, 3, {1, 2}, AggregationFunction::kSum, Axis::kColumn),
      Agg(2, 3, {1, 2}, AggregationFunction::kSum, Axis::kColumn),
  };
  const auto result = StripAggregates(grid, aggregations);
  EXPECT_EQ(result.removed_rows, (std::vector<int>{3}));
  EXPECT_EQ(result.grid.rows(), 3);
}

TEST(TableNormalizer, CoincidentalAggregateKeepsLine) {
  // Only 1 of 3 numeric cells in column 3 acts as an aggregate: below the
  // 0.5 default coverage, the column stays.
  const auto grid = MakeGrid({
      {"Item", "A", "B", "C"},
      {"x", "1", "4", "5"},
      {"y", "2", "5", "99"},
      {"z", "3", "6", "98"},
  });
  const std::vector<Aggregation> aggregations = {
      Agg(1, 3, {1, 2}, AggregationFunction::kSum)};
  const auto result = StripAggregates(grid, aggregations);
  EXPECT_TRUE(result.removed_columns.empty());
  EXPECT_EQ(result.grid, grid);
}

TEST(TableNormalizer, OptionsDisableAxes) {
  const auto grid = MakeGrid({
      {"Item", "A", "Sum"},
      {"x", "1", "1"},
      {"Total", "1", "1"},
  });
  const std::vector<Aggregation> aggregations = {
      Agg(1, 2, {1}, AggregationFunction::kSum),
      Agg(2, 2, {1}, AggregationFunction::kSum),
      Agg(1, 2, {1}, AggregationFunction::kSum, Axis::kColumn),
      Agg(2, 2, {1}, AggregationFunction::kSum, Axis::kColumn),
  };
  NormalizeTableOptions no_rows;
  no_rows.strip_rows = false;
  const auto result = StripAggregates(grid, aggregations, no_rows);
  EXPECT_TRUE(result.removed_rows.empty());
  EXPECT_FALSE(result.removed_columns.empty());
}

TEST(TableNormalizer, EndToEndWithDetection) {
  // Detection output drives normalization; totals column and row disappear,
  // data stays intact.
  const auto grid = MakeGrid({
      {"Item", "A", "B", "Sum"},
      {"x", "1", "4", "5"},
      {"y", "2", "5", "7"},
      {"z", "3", "6", "9"},
      {"Total", "6", "15", "21"},
  });
  AggreColConfig config;
  config.error_levels.fill(0.0);
  const auto detection = AggreCol(config).Detect(grid);
  const auto result = StripAggregates(grid, detection.aggregations);
  EXPECT_EQ(result.removed_columns, (std::vector<int>{3}));
  EXPECT_EQ(result.removed_rows, (std::vector<int>{4}));
  EXPECT_EQ(result.grid.rows(), 4);
  EXPECT_EQ(result.grid.columns(), 3);
  EXPECT_EQ(result.grid.at(3, 1), "3");
}

TEST(TableNormalizer, NoAggregationsNoChange) {
  const auto grid = MakeGrid({{"a", "b"}, {"1", "2"}});
  const auto result = StripAggregates(grid, {});
  EXPECT_EQ(result.grid, grid);
  EXPECT_TRUE(result.removed_rows.empty());
  EXPECT_TRUE(result.removed_columns.empty());
}

}  // namespace
}  // namespace aggrecol::core
