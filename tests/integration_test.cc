// Corpus-level integration tests: the full three-stage pipeline against the
// synthetic ground truth, including the paper's headline shape claims on a
// reduced corpus (the bench/ binaries run the full-size experiments).
#include "baselines/eager_baseline.h"
#include "core/aggrecol.h"
#include "datagen/corpus.h"
#include "eval/file_level.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"

namespace aggrecol {
namespace {

std::vector<eval::AnnotatedFile> SmallCorpus() {
  static const auto* const kFiles =
      new std::vector<eval::AnnotatedFile>(datagen::GenerateSmallCorpus(40, 123));
  return *kFiles;
}

TEST(Integration, AggregationLevelQuality) {
  core::AggreCol detector;
  std::vector<eval::Scores> per_file;
  for (const auto& file : SmallCorpus()) {
    const auto result = detector.Detect(file.grid);
    per_file.push_back(eval::Score(result.aggregations, file.annotations));
  }
  const auto total = eval::Accumulate(per_file);
  // Corpus-level quality; recall is dominated by a few large files with
  // coarsely rounded aggregates (the paper's error-level FN mode), so the
  // bound is looser than the typical per-file score.
  EXPECT_GT(total.precision, 0.9);
  EXPECT_GT(total.recall, 0.85);
  EXPECT_GT(total.F1(), 0.85);
}

TEST(Integration, FileLevelQuality) {
  core::AggreCol detector;
  std::vector<eval::Scores> per_file;
  for (const auto& file : SmallCorpus()) {
    const auto result = detector.Detect(file.grid);
    per_file.push_back(eval::Score(result.aggregations, file.annotations));
  }
  const auto histograms = eval::BuildFileLevel(per_file);
  // The paper's headline: most files land in the top precision/recall bin.
  EXPECT_GT(histograms.precision.Fraction(4), 0.6);
  EXPECT_GT(histograms.recall.Fraction(4), 0.6);
}

TEST(Integration, CollectiveStageImprovesPrecision) {
  core::AggreColConfig with;
  core::AggreColConfig without = with;
  without.run_collective = false;
  without.run_supplemental = false;
  core::AggreColConfig individual_plus_collective = with;
  individual_plus_collective.run_supplemental = false;

  std::vector<eval::Scores> stage_i;
  std::vector<eval::Scores> stage_c;
  for (const auto& file : SmallCorpus()) {
    const auto result_i = core::AggreCol(without).Detect(file.grid);
    const auto result_c = core::AggreCol(individual_plus_collective).Detect(file.grid);
    stage_i.push_back(eval::Score(result_i.aggregations, file.annotations));
    stage_c.push_back(eval::Score(result_c.aggregations, file.annotations));
  }
  const auto total_i = eval::Accumulate(stage_i);
  const auto total_c = eval::Accumulate(stage_c);
  EXPECT_GE(total_c.precision, total_i.precision);
}

TEST(Integration, SupplementalStageImprovesRecall) {
  core::AggreColConfig full;
  core::AggreColConfig no_supplemental = full;
  no_supplemental.run_supplemental = false;

  std::vector<eval::Scores> stage_c;
  std::vector<eval::Scores> stage_s;
  for (const auto& file : SmallCorpus()) {
    const auto result_c = core::AggreCol(no_supplemental).Detect(file.grid);
    const auto result_s = core::AggreCol(full).Detect(file.grid);
    stage_c.push_back(eval::Score(result_c.aggregations, file.annotations));
    stage_s.push_back(eval::Score(result_s.aggregations, file.annotations));
  }
  const auto total_c = eval::Accumulate(stage_c);
  const auto total_s = eval::Accumulate(stage_s);
  EXPECT_GE(total_s.recall, total_c.recall);
}

TEST(Integration, EagerBaselinePrecisionCollapses) {
  // On the same files, the eager baseline's sum precision is far below
  // AggreCol's (Fig. 11 / Sec. 4.4).
  core::AggreCol detector;
  std::vector<eval::Scores> aggrecol_scores;
  std::vector<eval::Scores> baseline_scores;
  int examined = 0;
  for (const auto& file : SmallCorpus()) {
    if (file.annotations.empty()) continue;
    if (++examined > 6) break;  // the baseline is expensive by design
    const auto numeric = numfmt::NumericGrid::FromGrid(file.grid);

    const auto result = detector.Detect(numeric);
    aggrecol_scores.push_back(eval::Score(
        result.aggregations, file.annotations, core::AggregationFunction::kSum));

    baselines::EagerBaselineConfig config;
    config.function = core::AggregationFunction::kSum;
    config.error_level = 0.01;
    config.budget_seconds = 5.0;
    const auto baseline = baselines::RunEagerBaseline(numeric, config);
    baseline_scores.push_back(eval::Score(baseline.aggregations, file.annotations,
                                          core::AggregationFunction::kSum));
  }
  const auto aggrecol_total = eval::Accumulate(aggrecol_scores);
  const auto baseline_total = eval::Accumulate(baseline_scores);
  EXPECT_GT(aggrecol_total.precision, baseline_total.precision);
  EXPECT_LT(baseline_total.precision, 0.5);
}

TEST(Integration, UnseenCorpusSmoke) {
  // A slice of the UNSEEN profile: detection still works end to end.
  auto spec = datagen::UnseenCorpus();
  spec.file_count = 8;
  const auto files = datagen::GenerateCorpus(spec);
  core::AggreCol detector;
  std::vector<eval::Scores> per_file;
  for (const auto& file : files) {
    const auto result = detector.Detect(file.grid);
    per_file.push_back(eval::Score(result.aggregations, file.annotations));
  }
  const auto total = eval::Accumulate(per_file);
  EXPECT_GT(total.recall, 0.7);
}

TEST(Integration, ParallelDetectionMatchesSequential) {
  core::AggreColConfig sequential;
  core::AggreColConfig threaded;
  threaded.threads = 4;
  core::AggreCol detector_seq(sequential);
  core::AggreCol detector_par(threaded);
  int checked = 0;
  for (const auto& file : SmallCorpus()) {
    if (++checked > 12) break;
    const auto a = detector_seq.Detect(file.grid);
    const auto b = detector_par.Detect(file.grid);
    ASSERT_EQ(a.aggregations.size(), b.aggregations.size()) << file.name;
    for (size_t i = 0; i < a.aggregations.size(); ++i) {
      EXPECT_EQ(a.aggregations[i], b.aggregations[i]) << file.name;
    }
  }
}

TEST(Integration, PruningRulesAblationOnlyReducesPrecision) {
  // Disabling the coverage threshold floods the result with per-row
  // coincidences: precision must drop measurably.
  core::AggreColConfig full;
  core::AggreColConfig no_coverage;
  no_coverage.pruning_rules.coverage_threshold = false;
  std::vector<eval::Scores> full_scores;
  std::vector<eval::Scores> ablated_scores;
  int checked = 0;
  for (const auto& file : SmallCorpus()) {
    if (++checked > 12) break;
    full_scores.push_back(eval::Score(
        core::AggreCol(full).Detect(file.grid).aggregations, file.annotations));
    ablated_scores.push_back(eval::Score(
        core::AggreCol(no_coverage).Detect(file.grid).aggregations, file.annotations));
  }
  EXPECT_GT(eval::Accumulate(full_scores).precision,
            eval::Accumulate(ablated_scores).precision);
}

TEST(Integration, DetectionIsDeterministic) {
  const eval::AnnotatedFile file = SmallCorpus()[0];
  core::AggreCol detector;
  const auto a = detector.Detect(file.grid);
  const auto b = detector.Detect(file.grid);
  ASSERT_EQ(a.aggregations.size(), b.aggregations.size());
  for (size_t i = 0; i < a.aggregations.size(); ++i) {
    EXPECT_EQ(a.aggregations[i], b.aggregations[i]);
  }
}

}  // namespace
}  // namespace aggrecol
