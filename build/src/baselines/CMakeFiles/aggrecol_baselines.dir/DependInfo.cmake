
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/adjacent_only_detector.cc" "src/baselines/CMakeFiles/aggrecol_baselines.dir/adjacent_only_detector.cc.o" "gcc" "src/baselines/CMakeFiles/aggrecol_baselines.dir/adjacent_only_detector.cc.o.d"
  "/root/repo/src/baselines/eager_baseline.cc" "src/baselines/CMakeFiles/aggrecol_baselines.dir/eager_baseline.cc.o" "gcc" "src/baselines/CMakeFiles/aggrecol_baselines.dir/eager_baseline.cc.o.d"
  "/root/repo/src/baselines/keyword_baseline.cc" "src/baselines/CMakeFiles/aggrecol_baselines.dir/keyword_baseline.cc.o" "gcc" "src/baselines/CMakeFiles/aggrecol_baselines.dir/keyword_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aggrecol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/structure/CMakeFiles/aggrecol_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/numfmt/CMakeFiles/aggrecol_numfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/aggrecol_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aggrecol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
