file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_baselines.dir/adjacent_only_detector.cc.o"
  "CMakeFiles/aggrecol_baselines.dir/adjacent_only_detector.cc.o.d"
  "CMakeFiles/aggrecol_baselines.dir/eager_baseline.cc.o"
  "CMakeFiles/aggrecol_baselines.dir/eager_baseline.cc.o.d"
  "CMakeFiles/aggrecol_baselines.dir/keyword_baseline.cc.o"
  "CMakeFiles/aggrecol_baselines.dir/keyword_baseline.cc.o.d"
  "libaggrecol_baselines.a"
  "libaggrecol_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
