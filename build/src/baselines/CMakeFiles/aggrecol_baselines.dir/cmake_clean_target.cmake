file(REMOVE_RECURSE
  "libaggrecol_baselines.a"
)
