# Empty dependencies file for aggrecol_baselines.
# This may be replaced when dependencies are built.
