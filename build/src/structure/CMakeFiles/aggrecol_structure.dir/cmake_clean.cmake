file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_structure.dir/table_splitter.cc.o"
  "CMakeFiles/aggrecol_structure.dir/table_splitter.cc.o.d"
  "libaggrecol_structure.a"
  "libaggrecol_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
