file(REMOVE_RECURSE
  "libaggrecol_structure.a"
)
