# Empty compiler generated dependencies file for aggrecol_structure.
# This may be replaced when dependencies are built.
