file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_core.dir/adjacency_strategy.cc.o"
  "CMakeFiles/aggrecol_core.dir/adjacency_strategy.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/aggrecol.cc.o"
  "CMakeFiles/aggrecol_core.dir/aggrecol.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/aggregation.cc.o"
  "CMakeFiles/aggrecol_core.dir/aggregation.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/collective_detector.cc.o"
  "CMakeFiles/aggrecol_core.dir/collective_detector.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/composite_detector.cc.o"
  "CMakeFiles/aggrecol_core.dir/composite_detector.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/extension.cc.o"
  "CMakeFiles/aggrecol_core.dir/extension.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/formula_export.cc.o"
  "CMakeFiles/aggrecol_core.dir/formula_export.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/function.cc.o"
  "CMakeFiles/aggrecol_core.dir/function.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/individual_detector.cc.o"
  "CMakeFiles/aggrecol_core.dir/individual_detector.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/pruning.cc.o"
  "CMakeFiles/aggrecol_core.dir/pruning.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/supplemental_detector.cc.o"
  "CMakeFiles/aggrecol_core.dir/supplemental_detector.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/table_normalizer.cc.o"
  "CMakeFiles/aggrecol_core.dir/table_normalizer.cc.o.d"
  "CMakeFiles/aggrecol_core.dir/window_strategy.cc.o"
  "CMakeFiles/aggrecol_core.dir/window_strategy.cc.o.d"
  "libaggrecol_core.a"
  "libaggrecol_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
