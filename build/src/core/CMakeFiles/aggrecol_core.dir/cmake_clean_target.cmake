file(REMOVE_RECURSE
  "libaggrecol_core.a"
)
