# Empty dependencies file for aggrecol_core.
# This may be replaced when dependencies are built.
