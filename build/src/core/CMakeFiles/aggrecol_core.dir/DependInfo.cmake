
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adjacency_strategy.cc" "src/core/CMakeFiles/aggrecol_core.dir/adjacency_strategy.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/adjacency_strategy.cc.o.d"
  "/root/repo/src/core/aggrecol.cc" "src/core/CMakeFiles/aggrecol_core.dir/aggrecol.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/aggrecol.cc.o.d"
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/aggrecol_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/collective_detector.cc" "src/core/CMakeFiles/aggrecol_core.dir/collective_detector.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/collective_detector.cc.o.d"
  "/root/repo/src/core/composite_detector.cc" "src/core/CMakeFiles/aggrecol_core.dir/composite_detector.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/composite_detector.cc.o.d"
  "/root/repo/src/core/extension.cc" "src/core/CMakeFiles/aggrecol_core.dir/extension.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/extension.cc.o.d"
  "/root/repo/src/core/formula_export.cc" "src/core/CMakeFiles/aggrecol_core.dir/formula_export.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/formula_export.cc.o.d"
  "/root/repo/src/core/function.cc" "src/core/CMakeFiles/aggrecol_core.dir/function.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/function.cc.o.d"
  "/root/repo/src/core/individual_detector.cc" "src/core/CMakeFiles/aggrecol_core.dir/individual_detector.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/individual_detector.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/core/CMakeFiles/aggrecol_core.dir/pruning.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/pruning.cc.o.d"
  "/root/repo/src/core/supplemental_detector.cc" "src/core/CMakeFiles/aggrecol_core.dir/supplemental_detector.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/supplemental_detector.cc.o.d"
  "/root/repo/src/core/table_normalizer.cc" "src/core/CMakeFiles/aggrecol_core.dir/table_normalizer.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/table_normalizer.cc.o.d"
  "/root/repo/src/core/window_strategy.cc" "src/core/CMakeFiles/aggrecol_core.dir/window_strategy.cc.o" "gcc" "src/core/CMakeFiles/aggrecol_core.dir/window_strategy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/structure/CMakeFiles/aggrecol_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/numfmt/CMakeFiles/aggrecol_numfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/aggrecol_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aggrecol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
