# Empty dependencies file for aggrecol_numfmt.
# This may be replaced when dependencies are built.
