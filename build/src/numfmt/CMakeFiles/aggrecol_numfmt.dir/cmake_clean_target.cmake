file(REMOVE_RECURSE
  "libaggrecol_numfmt.a"
)
