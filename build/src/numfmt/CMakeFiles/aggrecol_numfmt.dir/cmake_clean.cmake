file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_numfmt.dir/number_format.cc.o"
  "CMakeFiles/aggrecol_numfmt.dir/number_format.cc.o.d"
  "CMakeFiles/aggrecol_numfmt.dir/numeric_grid.cc.o"
  "CMakeFiles/aggrecol_numfmt.dir/numeric_grid.cc.o.d"
  "libaggrecol_numfmt.a"
  "libaggrecol_numfmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_numfmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
