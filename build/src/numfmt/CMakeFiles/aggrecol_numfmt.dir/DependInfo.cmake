
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numfmt/number_format.cc" "src/numfmt/CMakeFiles/aggrecol_numfmt.dir/number_format.cc.o" "gcc" "src/numfmt/CMakeFiles/aggrecol_numfmt.dir/number_format.cc.o.d"
  "/root/repo/src/numfmt/numeric_grid.cc" "src/numfmt/CMakeFiles/aggrecol_numfmt.dir/numeric_grid.cc.o" "gcc" "src/numfmt/CMakeFiles/aggrecol_numfmt.dir/numeric_grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/csv/CMakeFiles/aggrecol_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aggrecol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
