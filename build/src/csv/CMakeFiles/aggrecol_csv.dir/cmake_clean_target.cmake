file(REMOVE_RECURSE
  "libaggrecol_csv.a"
)
