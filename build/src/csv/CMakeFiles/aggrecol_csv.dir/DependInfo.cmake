
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/csv/dialect.cc" "src/csv/CMakeFiles/aggrecol_csv.dir/dialect.cc.o" "gcc" "src/csv/CMakeFiles/aggrecol_csv.dir/dialect.cc.o.d"
  "/root/repo/src/csv/grid.cc" "src/csv/CMakeFiles/aggrecol_csv.dir/grid.cc.o" "gcc" "src/csv/CMakeFiles/aggrecol_csv.dir/grid.cc.o.d"
  "/root/repo/src/csv/parser.cc" "src/csv/CMakeFiles/aggrecol_csv.dir/parser.cc.o" "gcc" "src/csv/CMakeFiles/aggrecol_csv.dir/parser.cc.o.d"
  "/root/repo/src/csv/sniffer.cc" "src/csv/CMakeFiles/aggrecol_csv.dir/sniffer.cc.o" "gcc" "src/csv/CMakeFiles/aggrecol_csv.dir/sniffer.cc.o.d"
  "/root/repo/src/csv/writer.cc" "src/csv/CMakeFiles/aggrecol_csv.dir/writer.cc.o" "gcc" "src/csv/CMakeFiles/aggrecol_csv.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aggrecol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
