# Empty compiler generated dependencies file for aggrecol_csv.
# This may be replaced when dependencies are built.
