file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_csv.dir/dialect.cc.o"
  "CMakeFiles/aggrecol_csv.dir/dialect.cc.o.d"
  "CMakeFiles/aggrecol_csv.dir/grid.cc.o"
  "CMakeFiles/aggrecol_csv.dir/grid.cc.o.d"
  "CMakeFiles/aggrecol_csv.dir/parser.cc.o"
  "CMakeFiles/aggrecol_csv.dir/parser.cc.o.d"
  "CMakeFiles/aggrecol_csv.dir/sniffer.cc.o"
  "CMakeFiles/aggrecol_csv.dir/sniffer.cc.o.d"
  "CMakeFiles/aggrecol_csv.dir/writer.cc.o"
  "CMakeFiles/aggrecol_csv.dir/writer.cc.o.d"
  "libaggrecol_csv.a"
  "libaggrecol_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
