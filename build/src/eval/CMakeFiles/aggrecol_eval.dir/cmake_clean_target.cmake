file(REMOVE_RECURSE
  "libaggrecol_eval.a"
)
