
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/annotations.cc" "src/eval/CMakeFiles/aggrecol_eval.dir/annotations.cc.o" "gcc" "src/eval/CMakeFiles/aggrecol_eval.dir/annotations.cc.o.d"
  "/root/repo/src/eval/dataset_io.cc" "src/eval/CMakeFiles/aggrecol_eval.dir/dataset_io.cc.o" "gcc" "src/eval/CMakeFiles/aggrecol_eval.dir/dataset_io.cc.o.d"
  "/root/repo/src/eval/error_analysis.cc" "src/eval/CMakeFiles/aggrecol_eval.dir/error_analysis.cc.o" "gcc" "src/eval/CMakeFiles/aggrecol_eval.dir/error_analysis.cc.o.d"
  "/root/repo/src/eval/file_level.cc" "src/eval/CMakeFiles/aggrecol_eval.dir/file_level.cc.o" "gcc" "src/eval/CMakeFiles/aggrecol_eval.dir/file_level.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/aggrecol_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/aggrecol_eval.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aggrecol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/structure/CMakeFiles/aggrecol_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/numfmt/CMakeFiles/aggrecol_numfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/aggrecol_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aggrecol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
