file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_eval.dir/annotations.cc.o"
  "CMakeFiles/aggrecol_eval.dir/annotations.cc.o.d"
  "CMakeFiles/aggrecol_eval.dir/dataset_io.cc.o"
  "CMakeFiles/aggrecol_eval.dir/dataset_io.cc.o.d"
  "CMakeFiles/aggrecol_eval.dir/error_analysis.cc.o"
  "CMakeFiles/aggrecol_eval.dir/error_analysis.cc.o.d"
  "CMakeFiles/aggrecol_eval.dir/file_level.cc.o"
  "CMakeFiles/aggrecol_eval.dir/file_level.cc.o.d"
  "CMakeFiles/aggrecol_eval.dir/metrics.cc.o"
  "CMakeFiles/aggrecol_eval.dir/metrics.cc.o.d"
  "libaggrecol_eval.a"
  "libaggrecol_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
