# Empty compiler generated dependencies file for aggrecol_eval.
# This may be replaced when dependencies are built.
