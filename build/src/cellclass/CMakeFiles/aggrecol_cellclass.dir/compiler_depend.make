# Empty compiler generated dependencies file for aggrecol_cellclass.
# This may be replaced when dependencies are built.
