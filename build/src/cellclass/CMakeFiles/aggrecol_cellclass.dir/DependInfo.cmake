
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellclass/features.cc" "src/cellclass/CMakeFiles/aggrecol_cellclass.dir/features.cc.o" "gcc" "src/cellclass/CMakeFiles/aggrecol_cellclass.dir/features.cc.o.d"
  "/root/repo/src/cellclass/line_classifier.cc" "src/cellclass/CMakeFiles/aggrecol_cellclass.dir/line_classifier.cc.o" "gcc" "src/cellclass/CMakeFiles/aggrecol_cellclass.dir/line_classifier.cc.o.d"
  "/root/repo/src/cellclass/random_forest.cc" "src/cellclass/CMakeFiles/aggrecol_cellclass.dir/random_forest.cc.o" "gcc" "src/cellclass/CMakeFiles/aggrecol_cellclass.dir/random_forest.cc.o.d"
  "/root/repo/src/cellclass/strudel_experiment.cc" "src/cellclass/CMakeFiles/aggrecol_cellclass.dir/strudel_experiment.cc.o" "gcc" "src/cellclass/CMakeFiles/aggrecol_cellclass.dir/strudel_experiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/aggrecol_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/aggrecol_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/aggrecol_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aggrecol_core.dir/DependInfo.cmake"
  "/root/repo/build/src/structure/CMakeFiles/aggrecol_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/numfmt/CMakeFiles/aggrecol_numfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/aggrecol_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aggrecol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
