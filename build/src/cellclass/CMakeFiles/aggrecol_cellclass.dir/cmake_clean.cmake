file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_cellclass.dir/features.cc.o"
  "CMakeFiles/aggrecol_cellclass.dir/features.cc.o.d"
  "CMakeFiles/aggrecol_cellclass.dir/line_classifier.cc.o"
  "CMakeFiles/aggrecol_cellclass.dir/line_classifier.cc.o.d"
  "CMakeFiles/aggrecol_cellclass.dir/random_forest.cc.o"
  "CMakeFiles/aggrecol_cellclass.dir/random_forest.cc.o.d"
  "CMakeFiles/aggrecol_cellclass.dir/strudel_experiment.cc.o"
  "CMakeFiles/aggrecol_cellclass.dir/strudel_experiment.cc.o.d"
  "libaggrecol_cellclass.a"
  "libaggrecol_cellclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_cellclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
