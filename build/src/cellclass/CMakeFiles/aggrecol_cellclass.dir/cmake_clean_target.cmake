file(REMOVE_RECURSE
  "libaggrecol_cellclass.a"
)
