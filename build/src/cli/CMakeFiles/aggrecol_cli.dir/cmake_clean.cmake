file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_cli.dir/arg_parser.cc.o"
  "CMakeFiles/aggrecol_cli.dir/arg_parser.cc.o.d"
  "CMakeFiles/aggrecol_cli.dir/commands.cc.o"
  "CMakeFiles/aggrecol_cli.dir/commands.cc.o.d"
  "libaggrecol_cli.a"
  "libaggrecol_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
