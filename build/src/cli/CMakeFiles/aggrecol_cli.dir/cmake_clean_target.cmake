file(REMOVE_RECURSE
  "libaggrecol_cli.a"
)
