# Empty dependencies file for aggrecol_cli.
# This may be replaced when dependencies are built.
