file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_util.dir/file_io.cc.o"
  "CMakeFiles/aggrecol_util.dir/file_io.cc.o.d"
  "CMakeFiles/aggrecol_util.dir/stopwatch.cc.o"
  "CMakeFiles/aggrecol_util.dir/stopwatch.cc.o.d"
  "CMakeFiles/aggrecol_util.dir/string_util.cc.o"
  "CMakeFiles/aggrecol_util.dir/string_util.cc.o.d"
  "CMakeFiles/aggrecol_util.dir/table_printer.cc.o"
  "CMakeFiles/aggrecol_util.dir/table_printer.cc.o.d"
  "libaggrecol_util.a"
  "libaggrecol_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
