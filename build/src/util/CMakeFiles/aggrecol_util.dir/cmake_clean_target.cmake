file(REMOVE_RECURSE
  "libaggrecol_util.a"
)
