# Empty dependencies file for aggrecol_util.
# This may be replaced when dependencies are built.
