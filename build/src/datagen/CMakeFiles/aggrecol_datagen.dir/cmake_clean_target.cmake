file(REMOVE_RECURSE
  "libaggrecol_datagen.a"
)
