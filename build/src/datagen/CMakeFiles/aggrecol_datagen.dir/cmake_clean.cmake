file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_datagen.dir/corpus.cc.o"
  "CMakeFiles/aggrecol_datagen.dir/corpus.cc.o.d"
  "CMakeFiles/aggrecol_datagen.dir/file_generator.cc.o"
  "CMakeFiles/aggrecol_datagen.dir/file_generator.cc.o.d"
  "libaggrecol_datagen.a"
  "libaggrecol_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
