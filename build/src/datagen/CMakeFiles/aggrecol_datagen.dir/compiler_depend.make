# Empty compiler generated dependencies file for aggrecol_datagen.
# This may be replaced when dependencies are built.
