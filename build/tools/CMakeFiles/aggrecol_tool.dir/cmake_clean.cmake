file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_tool.dir/aggrecol_main.cc.o"
  "CMakeFiles/aggrecol_tool.dir/aggrecol_main.cc.o.d"
  "aggrecol"
  "aggrecol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
