# Empty compiler generated dependencies file for aggrecol_tool.
# This may be replaced when dependencies are built.
