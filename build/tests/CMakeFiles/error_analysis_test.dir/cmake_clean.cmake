file(REMOVE_RECURSE
  "CMakeFiles/error_analysis_test.dir/error_analysis_test.cc.o"
  "CMakeFiles/error_analysis_test.dir/error_analysis_test.cc.o.d"
  "error_analysis_test"
  "error_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
