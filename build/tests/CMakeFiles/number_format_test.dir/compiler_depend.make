# Empty compiler generated dependencies file for number_format_test.
# This may be replaced when dependencies are built.
