file(REMOVE_RECURSE
  "CMakeFiles/number_format_test.dir/number_format_test.cc.o"
  "CMakeFiles/number_format_test.dir/number_format_test.cc.o.d"
  "number_format_test"
  "number_format_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/number_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
