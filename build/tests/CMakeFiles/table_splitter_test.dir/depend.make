# Empty dependencies file for table_splitter_test.
# This may be replaced when dependencies are built.
