file(REMOVE_RECURSE
  "CMakeFiles/table_splitter_test.dir/table_splitter_test.cc.o"
  "CMakeFiles/table_splitter_test.dir/table_splitter_test.cc.o.d"
  "table_splitter_test"
  "table_splitter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_splitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
