file(REMOVE_RECURSE
  "CMakeFiles/numeric_grid_test.dir/numeric_grid_test.cc.o"
  "CMakeFiles/numeric_grid_test.dir/numeric_grid_test.cc.o.d"
  "numeric_grid_test"
  "numeric_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
