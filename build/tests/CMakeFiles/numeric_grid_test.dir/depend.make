# Empty dependencies file for numeric_grid_test.
# This may be replaced when dependencies are built.
