file(REMOVE_RECURSE
  "CMakeFiles/cellclass_test.dir/cellclass_test.cc.o"
  "CMakeFiles/cellclass_test.dir/cellclass_test.cc.o.d"
  "cellclass_test"
  "cellclass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellclass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
