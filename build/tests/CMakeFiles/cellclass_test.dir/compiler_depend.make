# Empty compiler generated dependencies file for cellclass_test.
# This may be replaced when dependencies are built.
