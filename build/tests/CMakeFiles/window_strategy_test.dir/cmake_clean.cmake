file(REMOVE_RECURSE
  "CMakeFiles/window_strategy_test.dir/window_strategy_test.cc.o"
  "CMakeFiles/window_strategy_test.dir/window_strategy_test.cc.o.d"
  "window_strategy_test"
  "window_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
