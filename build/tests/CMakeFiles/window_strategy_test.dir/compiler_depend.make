# Empty compiler generated dependencies file for window_strategy_test.
# This may be replaced when dependencies are built.
