# Empty dependencies file for csv_sniffer_test.
# This may be replaced when dependencies are built.
