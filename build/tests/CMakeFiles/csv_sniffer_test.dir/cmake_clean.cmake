file(REMOVE_RECURSE
  "CMakeFiles/csv_sniffer_test.dir/csv_sniffer_test.cc.o"
  "CMakeFiles/csv_sniffer_test.dir/csv_sniffer_test.cc.o.d"
  "csv_sniffer_test"
  "csv_sniffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_sniffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
