file(REMOVE_RECURSE
  "CMakeFiles/adjacency_strategy_test.dir/adjacency_strategy_test.cc.o"
  "CMakeFiles/adjacency_strategy_test.dir/adjacency_strategy_test.cc.o.d"
  "adjacency_strategy_test"
  "adjacency_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjacency_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
