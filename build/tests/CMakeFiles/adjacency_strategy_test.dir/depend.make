# Empty dependencies file for adjacency_strategy_test.
# This may be replaced when dependencies are built.
