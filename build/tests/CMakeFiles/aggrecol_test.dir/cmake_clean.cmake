file(REMOVE_RECURSE
  "CMakeFiles/aggrecol_test.dir/aggrecol_test.cc.o"
  "CMakeFiles/aggrecol_test.dir/aggrecol_test.cc.o.d"
  "aggrecol_test"
  "aggrecol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
