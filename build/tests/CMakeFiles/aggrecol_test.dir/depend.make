# Empty dependencies file for aggrecol_test.
# This may be replaced when dependencies are built.
