file(REMOVE_RECURSE
  "CMakeFiles/composite_detector_test.dir/composite_detector_test.cc.o"
  "CMakeFiles/composite_detector_test.dir/composite_detector_test.cc.o.d"
  "composite_detector_test"
  "composite_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
