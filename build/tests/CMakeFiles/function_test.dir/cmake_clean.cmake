file(REMOVE_RECURSE
  "CMakeFiles/function_test.dir/function_test.cc.o"
  "CMakeFiles/function_test.dir/function_test.cc.o.d"
  "function_test"
  "function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
