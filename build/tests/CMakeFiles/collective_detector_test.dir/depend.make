# Empty dependencies file for collective_detector_test.
# This may be replaced when dependencies are built.
