file(REMOVE_RECURSE
  "CMakeFiles/collective_detector_test.dir/collective_detector_test.cc.o"
  "CMakeFiles/collective_detector_test.dir/collective_detector_test.cc.o.d"
  "collective_detector_test"
  "collective_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
