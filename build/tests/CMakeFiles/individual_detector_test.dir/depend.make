# Empty dependencies file for individual_detector_test.
# This may be replaced when dependencies are built.
