file(REMOVE_RECURSE
  "CMakeFiles/individual_detector_test.dir/individual_detector_test.cc.o"
  "CMakeFiles/individual_detector_test.dir/individual_detector_test.cc.o.d"
  "individual_detector_test"
  "individual_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/individual_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
