file(REMOVE_RECURSE
  "CMakeFiles/formula_export_test.dir/formula_export_test.cc.o"
  "CMakeFiles/formula_export_test.dir/formula_export_test.cc.o.d"
  "formula_export_test"
  "formula_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
