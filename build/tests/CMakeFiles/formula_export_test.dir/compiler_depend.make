# Empty compiler generated dependencies file for formula_export_test.
# This may be replaced when dependencies are built.
