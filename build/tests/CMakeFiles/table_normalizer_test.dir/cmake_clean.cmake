file(REMOVE_RECURSE
  "CMakeFiles/table_normalizer_test.dir/table_normalizer_test.cc.o"
  "CMakeFiles/table_normalizer_test.dir/table_normalizer_test.cc.o.d"
  "table_normalizer_test"
  "table_normalizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
