# Empty dependencies file for table_normalizer_test.
# This may be replaced when dependencies are built.
