file(REMOVE_RECURSE
  "CMakeFiles/supplemental_detector_test.dir/supplemental_detector_test.cc.o"
  "CMakeFiles/supplemental_detector_test.dir/supplemental_detector_test.cc.o.d"
  "supplemental_detector_test"
  "supplemental_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplemental_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
