# Empty compiler generated dependencies file for supplemental_detector_test.
# This may be replaced when dependencies are built.
