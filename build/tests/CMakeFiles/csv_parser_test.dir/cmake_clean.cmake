file(REMOVE_RECURSE
  "CMakeFiles/csv_parser_test.dir/csv_parser_test.cc.o"
  "CMakeFiles/csv_parser_test.dir/csv_parser_test.cc.o.d"
  "csv_parser_test"
  "csv_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
