# Empty dependencies file for csv_parser_test.
# This may be replaced when dependencies are built.
