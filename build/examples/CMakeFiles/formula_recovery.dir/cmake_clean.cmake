file(REMOVE_RECURSE
  "CMakeFiles/formula_recovery.dir/formula_recovery.cc.o"
  "CMakeFiles/formula_recovery.dir/formula_recovery.cc.o.d"
  "formula_recovery"
  "formula_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
