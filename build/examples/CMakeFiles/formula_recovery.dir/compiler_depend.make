# Empty compiler generated dependencies file for formula_recovery.
# This may be replaced when dependencies are built.
