# Empty dependencies file for metadata_enrichment.
# This may be replaced when dependencies are built.
