file(REMOVE_RECURSE
  "CMakeFiles/metadata_enrichment.dir/metadata_enrichment.cc.o"
  "CMakeFiles/metadata_enrichment.dir/metadata_enrichment.cc.o.d"
  "metadata_enrichment"
  "metadata_enrichment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_enrichment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
