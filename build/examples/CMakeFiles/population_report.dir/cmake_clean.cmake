file(REMOVE_RECURSE
  "CMakeFiles/population_report.dir/population_report.cc.o"
  "CMakeFiles/population_report.dir/population_report.cc.o.d"
  "population_report"
  "population_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
