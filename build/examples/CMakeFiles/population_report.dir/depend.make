# Empty dependencies file for population_report.
# This may be replaced when dependencies are built.
