# Empty compiler generated dependencies file for population_report.
# This may be replaced when dependencies are built.
