file(REMOVE_RECURSE
  "CMakeFiles/table_normalization.dir/table_normalization.cc.o"
  "CMakeFiles/table_normalization.dir/table_normalization.cc.o.d"
  "table_normalization"
  "table_normalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_normalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
