# Empty compiler generated dependencies file for table_normalization.
# This may be replaced when dependencies are built.
