# Empty compiler generated dependencies file for aggrecol_bench_util.
# This may be replaced when dependencies are built.
