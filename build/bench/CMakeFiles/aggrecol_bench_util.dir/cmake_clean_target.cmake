file(REMOVE_RECURSE
  "../lib/libaggrecol_bench_util.a"
)
