file(REMOVE_RECURSE
  "../lib/libaggrecol_bench_util.a"
  "../lib/libaggrecol_bench_util.pdb"
  "CMakeFiles/aggrecol_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/aggrecol_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggrecol_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
