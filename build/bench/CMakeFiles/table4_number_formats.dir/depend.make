# Empty dependencies file for table4_number_formats.
# This may be replaced when dependencies are built.
