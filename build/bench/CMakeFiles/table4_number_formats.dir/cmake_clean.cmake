file(REMOVE_RECURSE
  "CMakeFiles/table4_number_formats.dir/table4_number_formats.cc.o"
  "CMakeFiles/table4_number_formats.dir/table4_number_formats.cc.o.d"
  "table4_number_formats"
  "table4_number_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_number_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
