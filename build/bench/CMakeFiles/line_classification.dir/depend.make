# Empty dependencies file for line_classification.
# This may be replaced when dependencies are built.
