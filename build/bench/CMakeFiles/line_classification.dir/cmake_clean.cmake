file(REMOVE_RECURSE
  "CMakeFiles/line_classification.dir/line_classification.cc.o"
  "CMakeFiles/line_classification.dir/line_classification.cc.o.d"
  "line_classification"
  "line_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
