# Empty compiler generated dependencies file for keyword_baseline.
# This may be replaced when dependencies are built.
