file(REMOVE_RECURSE
  "CMakeFiles/keyword_baseline.dir/keyword_baseline.cc.o"
  "CMakeFiles/keyword_baseline.dir/keyword_baseline.cc.o.d"
  "keyword_baseline"
  "keyword_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyword_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
