file(REMOVE_RECURSE
  "CMakeFiles/table5_cell_classification.dir/table5_cell_classification.cc.o"
  "CMakeFiles/table5_cell_classification.dir/table5_cell_classification.cc.o.d"
  "table5_cell_classification"
  "table5_cell_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cell_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
