file(REMOVE_RECURSE
  "CMakeFiles/ablation_pruning_rules.dir/ablation_pruning_rules.cc.o"
  "CMakeFiles/ablation_pruning_rules.dir/ablation_pruning_rules.cc.o.d"
  "ablation_pruning_rules"
  "ablation_pruning_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pruning_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
