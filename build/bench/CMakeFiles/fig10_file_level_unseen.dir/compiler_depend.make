# Empty compiler generated dependencies file for fig10_file_level_unseen.
# This may be replaced when dependencies are built.
