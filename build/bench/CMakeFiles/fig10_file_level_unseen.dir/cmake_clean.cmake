file(REMOVE_RECURSE
  "CMakeFiles/fig10_file_level_unseen.dir/fig10_file_level_unseen.cc.o"
  "CMakeFiles/fig10_file_level_unseen.dir/fig10_file_level_unseen.cc.o.d"
  "fig10_file_level_unseen"
  "fig10_file_level_unseen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_file_level_unseen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
