file(REMOVE_RECURSE
  "CMakeFiles/table2_extension_example.dir/table2_extension_example.cc.o"
  "CMakeFiles/table2_extension_example.dir/table2_extension_example.cc.o.d"
  "table2_extension_example"
  "table2_extension_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_extension_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
