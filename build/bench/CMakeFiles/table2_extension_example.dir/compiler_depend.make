# Empty compiler generated dependencies file for table2_extension_example.
# This may be replaced when dependencies are built.
