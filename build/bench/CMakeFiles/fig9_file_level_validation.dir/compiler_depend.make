# Empty compiler generated dependencies file for fig9_file_level_validation.
# This may be replaced when dependencies are built.
