file(REMOVE_RECURSE
  "CMakeFiles/fig9_file_level_validation.dir/fig9_file_level_validation.cc.o"
  "CMakeFiles/fig9_file_level_validation.dir/fig9_file_level_validation.cc.o.d"
  "fig9_file_level_validation"
  "fig9_file_level_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_file_level_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
