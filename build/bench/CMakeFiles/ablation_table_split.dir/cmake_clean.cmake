file(REMOVE_RECURSE
  "CMakeFiles/ablation_table_split.dir/ablation_table_split.cc.o"
  "CMakeFiles/ablation_table_split.dir/ablation_table_split.cc.o.d"
  "ablation_table_split"
  "ablation_table_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_table_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
