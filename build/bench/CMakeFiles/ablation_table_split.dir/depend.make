# Empty dependencies file for ablation_table_split.
# This may be replaced when dependencies are built.
