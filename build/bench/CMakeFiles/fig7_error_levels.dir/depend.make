# Empty dependencies file for fig7_error_levels.
# This may be replaced when dependencies are built.
