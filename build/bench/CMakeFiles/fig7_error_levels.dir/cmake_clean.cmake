file(REMOVE_RECURSE
  "CMakeFiles/fig7_error_levels.dir/fig7_error_levels.cc.o"
  "CMakeFiles/fig7_error_levels.dir/fig7_error_levels.cc.o.d"
  "fig7_error_levels"
  "fig7_error_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_error_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
