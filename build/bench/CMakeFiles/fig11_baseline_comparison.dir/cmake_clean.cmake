file(REMOVE_RECURSE
  "CMakeFiles/fig11_baseline_comparison.dir/fig11_baseline_comparison.cc.o"
  "CMakeFiles/fig11_baseline_comparison.dir/fig11_baseline_comparison.cc.o.d"
  "fig11_baseline_comparison"
  "fig11_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
