# Empty dependencies file for composite_detection.
# This may be replaced when dependencies are built.
