file(REMOVE_RECURSE
  "CMakeFiles/composite_detection.dir/composite_detection.cc.o"
  "CMakeFiles/composite_detection.dir/composite_detection.cc.o.d"
  "composite_detection"
  "composite_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
